// Package featurestore implements the precomputed-feature cache the paper's
// production setting assumes (§2.3, §6.2: "services we use are pre-computed
// for each data point as the generated features assist teams across the
// organization", under per-team storage budgets). The store memoizes
// featurization results under a capacity bound with LRU eviction, and can
// persist its contents as JSON lines for reuse across processes.
package featurestore

import (
	"bufio"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

// Store is a bounded, concurrency-safe cache of featurized data points in
// front of a resource library. The zero value is not usable; call New.
//
// Concurrency: all cache state is guarded by mu, and cached *feature.Vector
// values are shared across callers, who must treat them as read-only (every
// in-repo consumer does: vectorization and similarity only read). Misses are
// coalesced — when several goroutines miss on the same point ID at once
// (many HTTP handlers featurizing overlapping traffic, see internal/serve),
// exactly one computes it and the rest wait for that result, so a hot point
// is never featurized twice concurrently.
type Store struct {
	lib      *resource.Library
	capacity int
	ttl      time.Duration    // 0 = entries never go stale
	now      func() time.Time // clock seam for TTL tests

	mu        sync.Mutex
	entries   map[int]*list.Element // point ID → LRU element
	lru       *list.List            // front = most recent
	pending   map[int]*inflight     // point ID → in-progress featurization
	hits      int
	misses    int
	evicted   int
	coalesced int
	stale     uint64 // stale vectors served because recomputation failed
	degraded  uint64 // vectors served with a degraded-channels annotation

	// Sampling tap: when enabled, every vector returned by Featurize is
	// recorded (up to sampleCap) until drained. The lifecycle drift
	// detectors snapshot served feature distributions through this.
	sampleCap int
	sample    []*feature.Vector
}

// Options configures a store beyond the library it fronts.
type Options struct {
	// Capacity bounds the cache (<= 0 means unbounded).
	Capacity int
	// TTL makes cached vectors stale after this age: a stale hit triggers
	// recomputation, but on resource failure the stale copy is served
	// instead (counted by StaleServed). 0 disables staleness — every hit is
	// fresh forever, exactly the pre-degradation behavior.
	TTL time.Duration
	// Now is the clock used for TTL decisions (nil = time.Now).
	Now func() time.Time
}

// inflight is one in-progress featurization another goroutine may wait on.
// The owner fills vec or err, then closes done; waiters read the fields only
// after done is closed, so the result survives even if the cache entry is
// evicted before the waiter wakes.
type inflight struct {
	done chan struct{}
	vec  *feature.Vector
	err  error
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	id       int
	vec      *feature.Vector
	storedAt time.Time // zero unless the store has a TTL
}

// New builds a store over lib holding at most capacity vectors (capacity <=
// 0 means unbounded).
func New(lib *resource.Library, capacity int) (*Store, error) {
	return NewWithOptions(lib, Options{Capacity: capacity})
}

// NewWithOptions builds a store over lib under opts.
func NewWithOptions(lib *resource.Library, opts Options) (*Store, error) {
	if lib == nil {
		return nil, fmt.Errorf("featurestore: nil library")
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Store{
		lib:      lib,
		capacity: opts.Capacity,
		ttl:      opts.TTL,
		now:      now,
		entries:  make(map[int]*list.Element),
		lru:      list.New(),
		pending:  make(map[int]*inflight),
	}, nil
}

// Library returns the wrapped resource library.
func (s *Store) Library() *resource.Library { return s.lib }

// Len returns the number of cached vectors.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats reports cache effectiveness counters.
func (s *Store) Stats() (hits, misses, evicted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evicted
}

// Coalesced reports how many misses were satisfied by waiting on another
// goroutine's in-flight featurization instead of recomputing.
func (s *Store) Coalesced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coalesced
}

// StaleServed reports how many requests were answered with a stale cached
// vector because recomputing it through the resources failed.
func (s *Store) StaleServed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stale
}

// DegradedServed reports how many requests were answered with a vector
// carrying a degraded-channels annotation (some service calls failed, no
// stale copy existed). Degraded vectors are never cached.
func (s *Store) DegradedServed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// EnableSampling starts recording served vectors, keeping at most capacity
// per drain interval (capacity <= 0 disables). The window semantics are a
// multiset: sample order follows request completion order, which is not
// deterministic under concurrency, so consumers must treat a drained window
// as unordered (monitor's detectors sort or bin before comparing).
func (s *Store) EnableSampling(capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sampleCap = capacity
	s.sample = nil
}

// DrainSample returns the vectors recorded since the last drain (or since
// EnableSampling) and resets the window.
func (s *Store) DrainSample() []*feature.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.sample
	s.sample = nil
	return out
}

// recordSample appends served vectors to the sampling window, bounded by the
// configured capacity. Nil slots (unfilled on error paths) are skipped.
func (s *Store) recordSample(vecs []*feature.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sampleCap <= 0 {
		return
	}
	for _, v := range vecs {
		if v == nil {
			continue
		}
		if len(s.sample) >= s.sampleCap {
			return
		}
		s.sample = append(s.sample, v)
	}
}

// insert stores a vector under a point ID, evicting the least recently used
// entry when over capacity.
func (s *Store) insert(id int, vec *feature.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(id, vec)
}

// insertLocked is insert with s.mu already held.
func (s *Store) insertLocked(id int, vec *feature.Vector) {
	var at time.Time
	if s.ttl > 0 {
		at = s.now()
	}
	if el, ok := s.entries[id]; ok {
		ent := el.Value.(*cacheEntry)
		ent.vec = vec
		ent.storedAt = at
		s.lru.MoveToFront(el)
		return
	}
	s.entries[id] = s.lru.PushFront(&cacheEntry{id: id, vec: vec, storedAt: at})
	if s.capacity > 0 && s.lru.Len() > s.capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).id)
		s.evicted++
	}
}

// Featurize returns feature vectors for pts, computing only cache misses
// (in parallel) and memoizing them. Point IDs key the cache, so IDs must be
// unique across everything featurized through one store — true for points
// sampled from one synth.Dataset and for serve traffic, whose point
// identity is its request ID.
//
// Concurrent calls that miss on the same ID coalesce: one caller computes,
// the others wait for its result. A nil ctx is treated as
// context.Background().
//
// When the library is guarded (resource.Library.WithGuards), failures
// degrade gracefully per point: a stale cached vector (older than TTL) is
// served if recomputation fails; otherwise the vector is returned with its
// failed channels missing and annotated via feature.Vector.Degraded (and
// not cached). Only a point with no surviving channels and no stale copy
// fails the call — its error wraps resource.ErrUnavailable, plus
// resource.ErrBreakerOpen when a breaker caused it.
func (s *Store) Featurize(ctx context.Context, cfg mapreduce.Config, pts []*synth.Point) ([]*feature.Vector, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := trace.Start(ctx, "featurestore.featurize")
	defer span.End()
	span.Add("points", int64(len(pts)))
	out := make([]*feature.Vector, len(pts))
	var mine []*synth.Point // misses this call owns and computes
	var mineIdx []int
	var mineFl []*inflight
	var mineStale []*feature.Vector // stale fallback per owned miss (or nil)
	var waitFl []*inflight          // misses another goroutine is already computing
	var waitIdx []int
	s.mu.Lock()
	for i, p := range pts {
		var staleVec *feature.Vector
		if el, ok := s.entries[p.ID]; ok {
			ent := el.Value.(*cacheEntry)
			if s.ttl <= 0 || s.now().Sub(ent.storedAt) <= s.ttl {
				s.hits++
				s.lru.MoveToFront(el)
				out[i] = ent.vec
				continue
			}
			// Past TTL: recompute, but keep the old vector as the
			// degradation fallback.
			staleVec = ent.vec
		}
		s.misses++
		if fl, ok := s.pending[p.ID]; ok {
			s.coalesced++
			waitFl = append(waitFl, fl)
			waitIdx = append(waitIdx, i)
			continue
		}
		fl := &inflight{done: make(chan struct{})}
		s.pending[p.ID] = fl
		mine = append(mine, p)
		mineIdx = append(mineIdx, i)
		mineFl = append(mineFl, fl)
		mineStale = append(mineStale, staleVec)
	}
	s.mu.Unlock()
	span.Add("misses", int64(len(mine)))
	span.Add("coalesced", int64(len(waitFl)))
	span.Add("hits", int64(len(pts)-len(mine)-len(waitFl)))

	var computeErr error
	if len(mine) > 0 {
		computeErr = s.computeMisses(ctx, cfg, out, mine, mineIdx, mineFl, mineStale)
		// Release waiters only after the pending entries are gone, so a
		// waiter that retries cleanly becomes a fresh owner.
		for _, fl := range mineFl {
			close(fl.done)
		}
	}
	for k, fl := range waitFl {
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err != nil {
			return nil, fl.err
		}
		out[waitIdx[k]] = fl.vec
	}
	if computeErr != nil {
		return nil, computeErr
	}
	s.recordSample(out)
	return out, nil
}

// computeMisses featurizes the misses this call owns, fills out, resolves
// the inflight slots, and removes the pending entries. It returns the error
// the overall Featurize call should fail with, if any.
func (s *Store) computeMisses(ctx context.Context, cfg mapreduce.Config, out []*feature.Vector,
	mine []*synth.Point, mineIdx []int, mineFl []*inflight, mineStale []*feature.Vector) error {

	if !s.lib.Guarded() {
		computed, err := s.lib.Featurize(ctx, cfg, mine)
		s.mu.Lock()
		for j, fl := range mineFl {
			if err != nil {
				fl.err = err
			} else {
				fl.vec = computed[j]
				out[mineIdx[j]] = computed[j]
				s.insertLocked(mine[j].ID, computed[j])
			}
			delete(s.pending, mine[j].ID)
		}
		s.mu.Unlock()
		return err
	}

	checked, err := s.lib.FeaturizeChecked(ctx, cfg, mine)
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for j, fl := range mineFl {
		delete(s.pending, mine[j].ID)
		if err != nil { // context cancellation: nothing was computed
			fl.err = err
			continue
		}
		c := checked[j]
		serveStale := func() {
			s.stale++
			fl.vec = mineStale[j]
			out[mineIdx[j]] = mineStale[j]
			// Keep the entry warm in the LRU but leave storedAt alone: it
			// stays stale, so the next access retries the resources.
			if el, ok := s.entries[mine[j].ID]; ok {
				s.lru.MoveToFront(el)
			}
		}
		switch {
		case c.Err != nil:
			if mineStale[j] != nil {
				serveStale()
				continue
			}
			fl.err = c.Err
			if firstErr == nil {
				firstErr = c.Err
			}
		case len(c.Failed) > 0:
			// A complete stale vector beats a freshly degraded one.
			if mineStale[j] != nil {
				serveStale()
				continue
			}
			c.Vec.MarkDegraded(c.Failed)
			s.degraded++
			fl.vec = c.Vec
			out[mineIdx[j]] = c.Vec
			// Not cached: a later retry may well produce the full vector.
		default:
			fl.vec = c.Vec
			out[mineIdx[j]] = c.Vec
			s.insertLocked(mine[j].ID, c.Vec)
		}
	}
	if err != nil {
		return err
	}
	return firstErr
}

// persistedRow is the JSONL wire form of one cached vector.
type persistedRow struct {
	ID  int             `json:"id"`
	Vec json.RawMessage `json:"vec"`
}

// Save writes the cache contents as JSON lines, most recently used first.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for el := s.lru.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*cacheEntry)
		vecJSON, err := json.Marshal(entry.vec)
		if err != nil {
			return fmt.Errorf("featurestore: encode point %d: %w", entry.id, err)
		}
		if err := enc.Encode(persistedRow{ID: entry.id, Vec: vecJSON}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load fills the cache from JSON lines previously written by Save. Existing
// entries with the same IDs are overwritten; capacity eviction applies.
func (s *Store) Load(r io.Reader) error {
	schema := s.lib.Schema()
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var row persistedRow
		if err := dec.Decode(&row); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("featurestore: decode row %d: %w", n, err)
		}
		vec, err := feature.UnmarshalVector(schema, row.Vec)
		if err != nil {
			return fmt.Errorf("featurestore: decode vector %d: %w", row.ID, err)
		}
		s.insert(row.ID, vec)
		n++
	}
}

// SaveFile persists the cache to path.
func (s *Store) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return s.Save(f)
}

// LoadFile fills the cache from path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
