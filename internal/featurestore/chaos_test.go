package featurestore

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"crossmodal/internal/faulty"
	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// toggleSvc is a fallible resource whose failure mode is flipped by tests:
// while failing is set, every CheckPoint errors; otherwise it returns a
// deterministic numeric reading derived from the point ID.
type toggleSvc struct {
	name    string
	failing atomic.Bool
}

var errToggled = errors.New("toggleSvc: induced outage")

func (s *toggleSvc) Def() feature.Def               { return feature.Def{Name: s.name, Kind: feature.Numeric} }
func (s *toggleSvc) Supports(_ synth.Modality) bool { return true }
func (s *toggleSvc) Observe(_ *synth.Entity, _ synth.Modality, _ *rand.Rand) feature.Value {
	return feature.NumericValue(1)
}

func (s *toggleSvc) CheckPoint(_ context.Context, p *synth.Point) (feature.Value, error) {
	if s.failing.Load() {
		return feature.Value{}, errToggled
	}
	return feature.NumericValue(float64(p.ID)), nil
}

// quietPolicy retries fast and never trips a breaker unless asked.
func quietPolicy() resource.Policy {
	return resource.Policy{
		MaxAttempts:      2,
		BreakerThreshold: -1,
		Sleep:            func(time.Duration) {},
	}
}

func toggleWorld(t *testing.T) (*synth.World, []*synth.Point) {
	t.Helper()
	_, pts := env(t)
	return synth.MustWorld(synth.DefaultConfig()), pts
}

// TestGuardedStoreMatchesPlainStoreAtZeroFaults: a guarded store over a
// zero-rate injected library returns byte-identical vectors and identical
// hit/miss accounting to the plain store.
func TestGuardedStoreMatchesPlainStoreAtZeroFaults(t *testing.T) {
	lib, pts := env(t)
	wrapped, _, err := faulty.WrapLibrary(lib, faulty.Schedule{Seed: 400})
	if err != nil {
		t.Fatal(err)
	}
	glib := wrapped.WithGuards(quietPolicy(), nil)

	plain, err := New(lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := New(glib, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{Workers: 4}
	want, err := plain.Featurize(ctx, cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := guarded.Featurize(ctx, cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if want[i].String() != got[i].String() {
			t.Fatalf("point %d: guarded store diverges at zero fault rate", pts[i].ID)
		}
		if len(got[i].Degraded()) != 0 {
			t.Fatalf("point %d marked degraded at zero fault rate", pts[i].ID)
		}
	}
	ph, pm, _ := plain.Stats()
	gh, gm, _ := guarded.Stats()
	if ph != gh || pm != gm {
		t.Fatalf("stats diverge: plain hits=%d misses=%d, guarded hits=%d misses=%d", ph, pm, gh, gm)
	}
	if guarded.StaleServed() != 0 || guarded.DegradedServed() != 0 {
		t.Fatal("degradation counters moved at zero fault rate")
	}
}

// TestStaleServedOnRecomputeFailure: a cached-but-expired entry is served
// stale when the backing resource fails, and counted.
func TestStaleServedOnRecomputeFailure(t *testing.T) {
	world, pts := toggleWorld(t)
	svc := &toggleSvc{name: "toggle"}
	lib, err := resource.NewLibrary(world, svc)
	if err != nil {
		t.Fatal(err)
	}
	glib := lib.WithGuards(quietPolicy(), nil)

	now := time.Unix(0, 0)
	store, err := NewWithOptions(glib, Options{
		TTL: time.Minute,
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{Workers: 2}
	sub := pts[:10]

	fresh, err := store.Featurize(ctx, cfg, sub)
	if err != nil {
		t.Fatal(err)
	}
	// Entries expire; the service goes dark. The store must fall back to
	// the stale copies rather than fail the batch.
	now = now.Add(2 * time.Minute)
	svc.failing.Store(true)
	stale, err := store.Featurize(ctx, cfg, sub)
	if err != nil {
		t.Fatalf("stale fallback did not rescue the batch: %v", err)
	}
	for i := range sub {
		if fresh[i] != stale[i] {
			t.Fatalf("point %d: stale serve returned a different vector instance", sub[i].ID)
		}
	}
	if got := store.StaleServed(); got != uint64(len(sub)) {
		t.Fatalf("StaleServed = %d, want %d", got, len(sub))
	}
	// The stale entries were not re-stamped: recovery must recompute.
	svc.failing.Store(false)
	if _, err := store.Featurize(ctx, cfg, sub); err != nil {
		t.Fatal(err)
	}
	if store.StaleServed() != uint64(len(sub)) {
		t.Fatal("healthy recompute still served stale entries")
	}
}

// TestColdMissFailsWithoutStaleCopy: with no cached fallback, an outage
// surfaces as ErrUnavailable for the affected points.
func TestColdMissFailsWithoutStaleCopy(t *testing.T) {
	world, pts := toggleWorld(t)
	svc := &toggleSvc{name: "toggle"}
	svc.failing.Store(true)
	lib, err := resource.NewLibrary(world, svc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := New(lib.WithGuards(quietPolicy(), nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = store.Featurize(context.Background(), mapreduce.Config{Workers: 2}, pts[:5])
	if !errors.Is(err, resource.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

// TestDegradedChannelsAnnotatedAndNotCached: when one of two channels fails,
// the vector is served with the failed channel annotated and is not cached —
// a later healthy call recomputes and caches a clean copy.
func TestDegradedChannelsAnnotatedAndNotCached(t *testing.T) {
	world, pts := toggleWorld(t)
	bad := &toggleSvc{name: "bad"}
	good := &toggleSvc{name: "good"}
	bad.failing.Store(true)
	lib, err := resource.NewLibrary(world, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	store, err := New(lib.WithGuards(quietPolicy(), nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{Workers: 2}
	sub := pts[:6]

	vecs, err := store.Featurize(ctx, cfg, sub)
	if err != nil {
		t.Fatal(err)
	}
	idxBad, ok1 := lib.Schema().Index("bad")
	idxGood, ok2 := lib.Schema().Index("good")
	if !ok1 || !ok2 {
		t.Fatal("schema missing toggle channels")
	}
	for i, v := range vecs {
		deg := v.Degraded()
		if len(deg) != 1 || deg[0] != "bad" {
			t.Fatalf("point %d: degraded = %v, want [bad]", sub[i].ID, deg)
		}
		if !v.At(idxBad).Missing {
			t.Fatalf("point %d: failed channel not missing", sub[i].ID)
		}
		if v.At(idxGood).Missing || v.At(idxGood).Num != float64(sub[i].ID) {
			t.Fatalf("point %d: healthy channel corrupted", sub[i].ID)
		}
	}
	if got := store.DegradedServed(); got != uint64(len(sub)) {
		t.Fatalf("DegradedServed = %d, want %d", got, len(sub))
	}
	// Degraded vectors must not have been cached.
	bad.failing.Store(false)
	vecs2, err := store.Featurize(ctx, cfg, sub)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ := store.Stats()
	if hits != 0 {
		t.Fatalf("degraded vectors were cached: %d hits on recovery pass", hits)
	}
	for i, v := range vecs2 {
		if len(v.Degraded()) != 0 {
			t.Fatalf("point %d still degraded after recovery", sub[i].ID)
		}
		if v.At(idxBad).Missing {
			t.Fatalf("point %d: recovered channel still missing", sub[i].ID)
		}
	}
	// Third pass: the clean copies are served from cache.
	if _, err := store.Featurize(ctx, cfg, sub); err != nil {
		t.Fatal(err)
	}
	hits, _, _ = store.Stats()
	if hits != len(sub) {
		t.Fatalf("clean recovery vectors not cached: hits=%d want %d", hits, len(sub))
	}
}

// TestBreakerOpenSurfacesInError: a tripped breaker propagates
// ErrBreakerOpen through the store's batch error.
func TestBreakerOpenSurfacesInError(t *testing.T) {
	world, pts := toggleWorld(t)
	svc := &toggleSvc{name: "toggle"}
	svc.failing.Store(true)
	lib, err := resource.NewLibrary(world, svc)
	if err != nil {
		t.Fatal(err)
	}
	pol := quietPolicy()
	pol.BreakerThreshold = 1
	pol.BreakerCooldown = time.Hour
	store, err := New(lib.WithGuards(pol, nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential so the second point definitely sees the open breaker.
	_, err = store.Featurize(context.Background(), mapreduce.Config{Workers: 1}, pts[:1])
	if !errors.Is(err, resource.ErrUnavailable) {
		t.Fatalf("first point err = %v, want ErrUnavailable", err)
	}
	_, err = store.Featurize(context.Background(), mapreduce.Config{Workers: 1}, pts[1:2])
	if !errors.Is(err, resource.ErrBreakerOpen) {
		t.Fatalf("second point err = %v, want ErrBreakerOpen", err)
	}
}

// TestChaosStoreRaceClean: the full store path under a 30% mixed fault
// schedule with concurrent workers — no panics, no deadlocks (run under
// -race via make chaos), retries bounded, counters consistent.
func TestChaosStoreRaceClean(t *testing.T) {
	lib, pts := env(t)
	wrapped, _, err := faulty.WrapLibrary(lib, faulty.Schedule{
		Seed:        777,
		ErrorRate:   0.10,
		LatencyRate: 0.10,
		LatencyMin:  50 * time.Microsecond,
		LatencyMax:  200 * time.Microsecond,
		PartialRate: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := quietPolicy()
	pol.MaxAttempts = 3
	glib := wrapped.WithGuards(pol, nil)
	store, err := New(glib, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{Workers: 8}
	sub := pts[:120]

	vecs, err := store.Featurize(ctx, cfg, sub)
	if err != nil && !errors.Is(err, resource.ErrUnavailable) {
		t.Fatalf("unexpected error class: %v", err)
	}
	if err == nil {
		for i, v := range vecs {
			if v == nil {
				t.Fatalf("point %d: nil vector without error", sub[i].ID)
			}
		}
	}
	var calls, retries uint64
	for _, gs := range glib.GuardStatuses() {
		calls += gs.Calls
		retries += gs.Retries
	}
	if calls == 0 {
		t.Fatal("no guarded calls recorded")
	}
	if retries > calls*uint64(pol.MaxAttempts-1) {
		t.Fatalf("retries %d exceed bound %d", retries, calls*uint64(pol.MaxAttempts-1))
	}
	// A second pass over the same points must be all cache hits or
	// degradations — and must not deadlock with faults still active.
	if _, err := store.Featurize(ctx, cfg, sub); err != nil && !errors.Is(err, resource.ErrUnavailable) {
		t.Fatalf("second pass: %v", err)
	}
}
