package core

import (
	"context"
	"fmt"

	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/labelprop"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

// SchemaFor composes an end-model schema from organizational service sets,
// optionally including the image- and text-specific feature sets. Only
// servable features are included.
func (p *Pipeline) SchemaFor(sets []string, includeImage, includeText bool) *feature.Schema {
	all := append([]string{}, sets...)
	if includeImage {
		all = append(all, resource.ImageSet)
	}
	if includeText {
		all = append(all, resource.TextSet)
	}
	return p.lib.Schema().Sets(all...).Servable()
}

// EmbeddingOnlySchema returns the schema holding only the pre-trained image
// embedding — the paper's reporting baseline ("a fully supervised image
// model trained with only pre-trained image embedding features", §6.3).
func (p *Pipeline) EmbeddingOnlySchema() *feature.Schema {
	return p.lib.Schema().Project(func(d feature.Def) bool {
		return d.Name == "img_embedding"
	})
}

// TrainSupervised trains a fully supervised early-fusion model on labeled
// points over the given schema — the baseline and hand-label comparisons of
// §6.4.
func (p *Pipeline) TrainSupervised(ctx context.Context, pts []*synth.Point, schema *feature.Schema, mcfg model.Config) (fusion.Predictor, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: no supervised training points")
	}
	ctx, span := trace.Start(ctx, "train")
	defer span.End()
	span.SetStr("fusion", "early")
	span.SetStr("mode", "supervised")
	vecs, err := p.Featurize(ctx, pts)
	if err != nil {
		return nil, fmt.Errorf("core: featurize supervised corpus: %w", err)
	}
	targets := make([]float64, len(pts))
	for i, pt := range pts {
		if pt.Label > 0 {
			targets[i] = 1
		}
	}
	corpus := fusion.Corpus{Name: "supervised", Vectors: vecs, Targets: targets}
	return fusion.TrainEarly(ctx, []fusion.Corpus{corpus}, fusion.Config{
		Schema:   schema,
		Model:    p.modelConfig(mcfg),
		MaxVocab: p.opts.MaxVocab,
	})
}

// EvaluateAUPRC featurizes the test points and returns the predictor's
// AUPRC against their labels.
func (p *Pipeline) EvaluateAUPRC(ctx context.Context, predictor fusion.Predictor, test []*synth.Point) (float64, error) {
	ctx, span := trace.Start(ctx, "eval")
	defer span.End()
	span.SetInt("points", int64(len(test)))
	vecs, err := p.Featurize(ctx, test)
	if err != nil {
		return 0, fmt.Errorf("core: featurize test: %w", err)
	}
	auprc := metrics.AUPRC(synth.Labels(test), predictor.PredictBatch(vecs))
	span.SetFloat("auprc", auprc)
	return auprc, nil
}

// BudgetPoint is one point on a hand-label budget curve (Figure 5).
type BudgetPoint struct {
	Budget int
	AUPRC  float64
}

// SupervisedCurve trains fully supervised image models at increasing
// hand-label budgets drawn from the pool and evaluates each on the test set.
// Budgets exceeding the pool are skipped.
func (p *Pipeline) SupervisedCurve(ctx context.Context, pool, test []*synth.Point, budgets []int, schema *feature.Schema, mcfg model.Config) ([]BudgetPoint, error) {
	var curve []BudgetPoint
	for _, n := range budgets {
		if n <= 0 || n > len(pool) {
			continue
		}
		predictor, err := p.TrainSupervised(ctx, pool[:n], schema, mcfg)
		if err != nil {
			return nil, fmt.Errorf("core: supervised budget %d: %w", n, err)
		}
		auprc, err := p.EvaluateAUPRC(ctx, predictor, test)
		if err != nil {
			return nil, err
		}
		curve = append(curve, BudgetPoint{Budget: n, AUPRC: auprc})
	}
	if len(curve) == 0 {
		return nil, fmt.Errorf("core: no feasible budgets (pool %d)", len(pool))
	}
	return curve, nil
}

// CrossOver returns the smallest budget on the curve whose supervised AUPRC
// meets or beats target, or 0 if no budget does (the cross-over lies beyond
// the pool — the paper reports these as very large cross-over points).
func CrossOver(curve []BudgetPoint, target float64) int {
	for _, pt := range curve {
		if pt.AUPRC >= target {
			return pt.Budget
		}
	}
	return 0
}

// FitGraphWeights exposes label-propagation feature-weight fitting for the
// pipeline and tools; see labelprop.FitFeatureWeights.
func FitGraphWeights(vecs []*feature.Vector, labels []int8, scales feature.Scales, pairs int, seed int64) (feature.Weights, error) {
	return labelprop.FitFeatureWeights(vecs, labels, scales, pairs, seed)
}
