package core

import (
	"context"
	"fmt"
	"testing"

	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// TestDiagnostics prints stage-by-stage quality numbers; run with
// go test -run TestDiagnostics -v. Skipped in normal runs.
func TestDiagnostics(t *testing.T) {
	if testing.Short() || testing.Verbose() == false {
		t.Skip("diagnostic probe; run with -v")
	}
	ctx := context.Background()
	_, ds := testEnv(t)

	p, res := runPipeline(t, smallOptions())
	fmt.Printf("LFs=%d coverage=%.3f WS P/R/F1 = %.3f/%.3f/%.3f cuts=%+v propIters=%d\n",
		res.Report.LFCount, res.Report.WSCoverage,
		res.Report.WSPrecision, res.Report.WSRecall, res.Report.WSF1,
		res.Report.Cuts, res.Report.PropIters)
	fmt.Printf("mining: %s\n", res.Report.Mining)
	for _, s := range res.Report.DevStats {
		fmt.Printf("  LF %-40s p=%.3f r=%.4f cov=%.4f votes=%d\n", s.Name, s.Precision, s.Recall, s.Coverage, s.Votes)
	}
	if res.Report.LabelModel != nil {
		for j, name := range res.Report.LabelModel.Names {
			fmt.Printf("  acc %-40s %.3f (prop %.3f)\n", name, res.Report.LabelModel.Accuracy(j), res.Report.LabelModel.Propensity(j))
		}
	}

	// Image-side LF quality against hidden truth.
	imgVecs, _ := p.Featurize(ctx, ds.UnlabeledImage)
	lfSchema := p.lib.Schema().Sets(p.opts.LFSets...)
	imgLabels := synth.Labels(ds.UnlabeledImage)
	lfs, _, _ := p.buildLFs(ctx, reprojectAll(imgVecs, lfSchema), imgLabels) // re-mine on image for reference only
	_ = lfs
	textVecs, _ := p.Featurize(ctx, ds.LabeledText)
	textLFs, _, _ := p.buildLFs(ctx, reprojectAll(textVecs, lfSchema), synth.Labels(ds.LabeledText))
	m2, _ := lf.Apply(ctx, mapreduce.Config{}, textLFs, reprojectAll(imgVecs, lfSchema))
	fmt.Println("image-side quality of text-mined LFs:")
	for _, s := range lf.EvaluateAll(m2, imgLabels) {
		fmt.Printf("  LF %-40s p=%.3f r=%.4f cov=%.4f\n", s.Name, s.Precision, s.Recall, s.Coverage)
	}
	// Posterior histogram of the pipeline's probabilistic labels.
	var buckets [10]int
	for _, pr := range res.ProbLabels {
		b := int(pr * 10)
		if b > 9 {
			b = 9
		}
		buckets[b]++
	}
	fmt.Printf("posterior histogram: %v\n", buckets)

	base := metrics.BaseRate(synth.Labels(ds.TestImage))
	aucBoth, _ := p.EvaluateAUPRC(ctx, res.Predictor, ds.TestImage)

	textOnly := smallOptions()
	textOnly.UseImage = false
	pT, resT := runPipeline(t, textOnly)
	aucText, _ := pT.EvaluateAUPRC(ctx, resT.Predictor, ds.TestImage)

	imgOnly := smallOptions()
	imgOnly.UseText = false
	pI, resI := runPipeline(t, imgOnly)
	aucImg, _ := pI.EvaluateAUPRC(ctx, resI.Predictor, ds.TestImage)

	// Oracle: image model trained on TRUE labels of the unlabeled corpus.
	oraclePred, err := p.TrainSupervised(ctx, ds.UnlabeledImage, p.SchemaFor(resource.ABCD, true, false), model.Config{Epochs: 5, Seed: 5, LearningRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	aucOracle, _ := p.EvaluateAUPRC(ctx, oraclePred, ds.TestImage)

	embSchema := p.EmbeddingOnlySchema()
	embPred, err := p.TrainSupervised(ctx, ds.HandLabelPool, embSchema, model.Config{Epochs: 5, Seed: 5, LearningRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	aucEmb, _ := p.EvaluateAUPRC(ctx, embPred, ds.TestImage)

	fmt.Printf("base=%.3f emb-baseline=%.3f text=%.3f imageWS=%.3f both=%.3f oracleImage=%.3f\n",
		base, aucEmb, aucText, aucImg, aucBoth, aucOracle)
	fmt.Printf("relative: text=%.2f image=%.2f both=%.2f oracle=%.2f\n",
		aucText/aucEmb, aucImg/aucEmb, aucBoth/aucEmb, aucOracle/aucEmb)
}
