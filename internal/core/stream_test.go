package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"crossmodal/internal/faulty"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// Streaming fixture: its own (smaller) corpus so stream tests stay fast and
// independent of the shared testEnv dataset.
var (
	streamOnce  sync.Once
	streamWorld *synth.World
	streamLib   *resource.Library
	streamTask  *synth.Task
)

func streamEnv(t *testing.T) (*resource.Library, *synth.World, *synth.Task) {
	t.Helper()
	streamOnce.Do(func() {
		w := synth.MustWorld(synth.DefaultConfig())
		lib, err := resource.StandardLibrary(w)
		if err != nil {
			t.Fatal(err)
		}
		task, err := synth.TaskByName("CT1")
		if err != nil {
			t.Fatal(err)
		}
		streamWorld, streamLib, streamTask = w, lib, task
	})
	if streamLib == nil {
		t.Fatal("stream environment setup failed")
	}
	return streamLib, streamWorld, streamTask
}

func streamDSConfig() synth.DatasetConfig {
	return synth.DatasetConfig{Seed: 31, NumText: 800, NumUnlabeledImage: 400, NumHandLabelPool: 120, NumTest: 150}
}

func streamOptions() Options {
	o := DefaultOptions()
	o.Seed = 31
	o.Workers = 2
	o.MaxGraphSeeds = 300
	o.GraphDevNodes = 120
	return o
}

func newStreamPipeline(t *testing.T, opts Options) *Pipeline {
	t.Helper()
	lib, _, _ := streamEnv(t)
	p, err := NewPipeline(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runStreamed(t *testing.T, opts Options, sopts StreamOptions) *StreamedCuration {
	t.Helper()
	p := newStreamPipeline(t, opts)
	_, w, task := streamEnv(t)
	sc, err := p.CurateStreamed(context.Background(), w, task, streamDSConfig(), sopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc
}

// streamedEqual asserts two streamed curations are bit-identical in every
// training-relevant output.
func streamedEqual(t *testing.T, got, want *StreamedCuration) {
	t.Helper()
	if len(got.ProbLabels) != len(want.ProbLabels) {
		t.Fatalf("prob labels: %d vs %d", len(got.ProbLabels), len(want.ProbLabels))
	}
	for i := range got.ProbLabels {
		if math.Float64bits(got.ProbLabels[i]) != math.Float64bits(want.ProbLabels[i]) {
			t.Fatalf("prob[%d] = %v vs %v (bit drift)", i, got.ProbLabels[i], want.ProbLabels[i])
		}
		if got.Covered[i] != want.Covered[i] {
			t.Fatalf("covered[%d] = %v vs %v", i, got.Covered[i], want.Covered[i])
		}
	}
	g, w := got.Report, want.Report
	if g.LFCount != w.LFCount || g.PropIters != w.PropIters || g.Cuts != w.Cuts {
		t.Errorf("report drift: lfs %d vs %d, iters %d vs %d, cuts %+v vs %+v",
			g.LFCount, w.LFCount, g.PropIters, w.PropIters, g.Cuts, w.Cuts)
	}
	exact := func(name string, a, b float64) {
		if a != b {
			t.Errorf("%s = %v vs %v (bit drift)", name, a, b)
		}
	}
	exact("ws_precision", g.WSPrecision, w.WSPrecision)
	exact("ws_recall", g.WSRecall, w.WSRecall)
	exact("ws_f1", g.WSF1, w.WSF1)
	exact("ws_coverage", g.WSCoverage, w.WSCoverage)
}

// TestCurateStreamedMatchesCurate: the streamed path and the in-memory path
// must produce bit-identical curations at the same configuration — the
// package-internal version of the golden gate, comparing every probabilistic
// label instead of a fingerprint.
func TestCurateStreamedMatchesCurate(t *testing.T) {
	_, w, task := streamEnv(t)
	opts := streamOptions()
	p := newStreamPipeline(t, opts)

	ds, err := synth.BuildDataset(w, task, streamDSConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.Curate(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}

	sc := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128})

	if len(sc.ProbLabels) != len(cur.ProbLabels) {
		t.Fatalf("prob labels: %d streamed vs %d in-memory", len(sc.ProbLabels), len(cur.ProbLabels))
	}
	for i := range cur.ProbLabels {
		if math.Float64bits(sc.ProbLabels[i]) != math.Float64bits(cur.ProbLabels[i]) {
			t.Fatalf("prob[%d] = %v streamed vs %v in-memory (bit drift)", i, sc.ProbLabels[i], cur.ProbLabels[i])
		}
		if sc.Covered[i] != cur.Covered[i] {
			t.Fatalf("covered[%d] = %v streamed vs %v in-memory", i, sc.Covered[i], cur.Covered[i])
		}
	}
	if sc.Report.LFCount != cur.Report.LFCount || sc.Report.PropIters != cur.Report.PropIters || sc.Report.Cuts != cur.Report.Cuts {
		t.Errorf("report drift: lfs %d vs %d, iters %d vs %d, cuts %+v vs %+v",
			sc.Report.LFCount, cur.Report.LFCount, sc.Report.PropIters, cur.Report.PropIters, sc.Report.Cuts, cur.Report.Cuts)
	}
	if sc.Report.WSF1 != cur.Report.WSF1 || sc.Report.WSCoverage != cur.Report.WSCoverage {
		t.Errorf("ws drift: f1 %v vs %v, coverage %v vs %v",
			sc.Report.WSF1, cur.Report.WSF1, sc.Report.WSCoverage, cur.Report.WSCoverage)
	}

	// Materialize must hand back the stored vectors bit-exactly and in order.
	mat, err := sc.Materialize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.TextVecs) != len(cur.TextVecs) || len(mat.ImageVecs) != len(cur.ImageVecs) {
		t.Fatalf("materialized %d/%d vecs, in-memory %d/%d",
			len(mat.TextVecs), len(mat.ImageVecs), len(cur.TextVecs), len(cur.ImageVecs))
	}
	for i := range cur.TextVecs {
		if mat.TextVecs[i].String() != cur.TextVecs[i].String() {
			t.Fatalf("text vec %d drifted through the store:\n  store: %s\n  mem:   %s",
				i, mat.TextVecs[i], cur.TextVecs[i])
		}
	}
}

// TestCurateStreamedRefusesDirtyStore: without Resume, a non-empty store
// directory is an error, not silent reuse.
func TestCurateStreamedRefusesDirtyStore(t *testing.T) {
	dir := t.TempDir()
	opts := streamOptions()
	runStreamed(t, opts, StreamOptions{Dir: dir, ChunkSize: 128})

	p := newStreamPipeline(t, opts)
	_, w, task := streamEnv(t)
	_, err := p.CurateStreamed(context.Background(), w, task, streamDSConfig(), StreamOptions{Dir: dir, ChunkSize: 128})
	if err == nil || !strings.Contains(err.Error(), "already has data") {
		t.Fatalf("dirty store not refused: %v", err)
	}
}

// TestCurateStreamedRequiresDir and mined-LF gating.
func TestCurateStreamedConfigErrors(t *testing.T) {
	opts := streamOptions()
	p := newStreamPipeline(t, opts)
	_, w, task := streamEnv(t)
	if _, err := p.CurateStreamed(context.Background(), w, task, streamDSConfig(), StreamOptions{}); err == nil {
		t.Fatal("missing Dir accepted")
	}

	opts.LFSource = ExpertLFs
	pe := newStreamPipeline(t, opts)
	_, err := pe.CurateStreamed(context.Background(), w, task, streamDSConfig(), StreamOptions{Dir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "mined LFs only") {
		t.Fatalf("expert LFs not rejected: %v", err)
	}
}

// TestCurateStreamedResumeAfterIngestCrash: kill the run mid-ingest (after
// some chunks committed), then reopen with Resume — the committed prefix is
// not re-featurized and the final curation is bit-identical to a run that
// never crashed.
func TestCurateStreamedResumeAfterIngestCrash(t *testing.T) {
	opts := streamOptions()
	clean := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128})

	dir := t.TempDir()
	boom := errors.New("injected crash")
	p := newStreamPipeline(t, opts)
	_, w, task := streamEnv(t)
	_, err := p.CurateStreamed(context.Background(), w, task, streamDSConfig(), StreamOptions{
		Dir: dir, ChunkSize: 128,
		ChunkHook: func(stage string, chunk int) error {
			if stage == "ingest:image" && chunk == 1 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("injected crash not surfaced: %v", err)
	}

	// Resume: count segment commits to prove the committed prefix (all 7 text
	// chunks + 2 image chunks) was skipped, not re-featurized and re-written.
	var commits int
	resumed := runStreamed(t, opts, StreamOptions{
		Dir: dir, ChunkSize: 128, Resume: true,
		CommitHook: func(op, path string) error {
			if op == "marker" {
				commits++
			}
			return nil
		},
	})
	streamedEqual(t, resumed, clean)
	textChunks, imageChunks := 7, 4 // ceil(800/128), ceil(400/128)
	want := textChunks + imageChunks - (textChunks + 2)
	if commits != want {
		t.Errorf("resume committed %d chunks, want %d (committed prefix must be reused)", commits, want)
	}
}

// TestCurateStreamedResumeAfterTornCommit: crash between segment writes and
// the commit marker, leaving orphaned segment files. Reopening must
// quarantine the debris and the resumed run must re-featurize exactly that
// chunk, landing bit-identical to a clean run.
func TestCurateStreamedResumeAfterTornCommit(t *testing.T) {
	opts := streamOptions()
	clean := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128})

	dir := t.TempDir()
	boom := errors.New("torn commit")
	p := newStreamPipeline(t, opts)
	_, w, task := streamEnv(t)
	_, err := p.CurateStreamed(context.Background(), w, task, streamDSConfig(), StreamOptions{
		Dir: dir, ChunkSize: 128,
		CommitHook: func(op, path string) error {
			// Segments for image chunk 2 land on disk; its marker never does.
			if op == "marker" && strings.Contains(path, "image") && strings.Contains(path, "c000002") {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("injected torn commit not surfaced: %v", err)
	}

	resumed := runStreamed(t, opts, StreamOptions{Dir: dir, ChunkSize: 128, Resume: true})
	streamedEqual(t, resumed, clean)
	if q := resumed.Image.Quarantined(); len(q) == 0 {
		t.Error("torn segments were not quarantined on reopen")
	}
}

// TestCurateStreamedWindowed: a graph window smaller than the corpus still
// completes; rows past the window simply get no propagation vote. The
// windowed run must agree with the full run on everything upstream of
// propagation (mined LF count), and its outputs keep corpus shape.
func TestCurateStreamedWindowed(t *testing.T) {
	opts := streamOptions()
	full := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128})
	windowed := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128, GraphWindow: 150})

	if len(windowed.ProbLabels) != len(full.ProbLabels) {
		t.Fatalf("windowed probs %d, full %d", len(windowed.ProbLabels), len(full.ProbLabels))
	}
	if windowed.Report.LFCount != full.Report.LFCount {
		t.Errorf("window changed LF count: %d vs %d (mining must not depend on the graph window)",
			windowed.Report.LFCount, full.Report.LFCount)
	}
	if c := windowed.Report.WSCoverage; c <= 0 || c > 1 {
		t.Errorf("windowed coverage %v out of range", c)
	}
}

// TestCurateStreamedWarmPropagate: the warm incremental-propagation mode
// (re-propagate after every graph delta, warm-started from the previous
// scores) must complete and converge to scores near the cold fixed point.
func TestCurateStreamedWarmPropagate(t *testing.T) {
	opts := streamOptions()
	cold := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128})
	warm := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128, WarmPropagate: true})

	if warm.Report.PropIters <= 0 {
		t.Fatal("warm run reports no propagation iterations")
	}
	if len(warm.ProbLabels) != len(cold.ProbLabels) {
		t.Fatalf("warm probs %d, cold %d", len(warm.ProbLabels), len(cold.ProbLabels))
	}
	if d := math.Abs(warm.Report.WSCoverage - cold.Report.WSCoverage); d > 0.1 {
		t.Errorf("warm coverage %v far from cold %v", warm.Report.WSCoverage, cold.Report.WSCoverage)
	}
}

// TestCurateStreamedTextOnly: with the image modality off the streamed path
// returns an empty (all-abstain) curation without touching the WS stages.
func TestCurateStreamedTextOnly(t *testing.T) {
	opts := streamOptions()
	opts.UseImage = false
	sc := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128})
	if sc.Report.LFCount != 0 {
		t.Errorf("text-only run mined %d LFs", sc.Report.LFCount)
	}
	for i, c := range sc.Covered {
		if c || sc.ProbLabels[i] != 0 {
			t.Fatalf("text-only run produced a label at row %d", i)
		}
	}
}

// streamedPeakHeap runs a streamed curation over a corpus scaled by mult and
// returns the post-GC heap high-water mark sampled after every chunk step.
// Numeric quantile mining is off (its candidate buffer is O(corpus) by
// design) and the graph window is pinned, so resident state should be
// bounded by the chunk size, not the corpus.
func streamedPeakHeap(t *testing.T, mult int) uint64 {
	t.Helper()
	opts := streamOptions()
	opts.Mining.NumericQuantiles = 0
	var peak uint64
	probe := func(stage string, chunk int) error {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		return nil
	}
	p := newStreamPipeline(t, opts)
	_, w, task := streamEnv(t)
	cfg := synth.DatasetConfig{Seed: 47, NumText: 1200 * mult, NumUnlabeledImage: 600 * mult, NumHandLabelPool: 100, NumTest: 100}
	sc, err := p.CurateStreamed(context.Background(), w, task, cfg, StreamOptions{
		Dir: t.TempDir(), ChunkSize: 256, GraphWindow: 256, ChunkHook: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Close()
	return peak
}

// TestCurateStreamedMemoryCeiling is the scale gate from the issue: growing
// the corpus 10x at a fixed chunk size and graph window must leave the heap
// high-water mark essentially flat — the streamed path's memory is bounded
// by configuration, not corpus size. The generous slack absorbs the real
// O(n) residue (int8 labels, vote bytes, float64 probs) and GC jitter while
// still failing hard if any stage silently materializes the corpus.
func TestCurateStreamedMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	small := streamedPeakHeap(t, 1)
	big := streamedPeakHeap(t, 10)
	t.Logf("peak live heap: %d KiB at 1x, %d KiB at 10x", small>>10, big>>10)
	if big > 2*small+32<<20 {
		t.Errorf("heap high-water grew from %d KiB to %d KiB over a 10x corpus; streamed memory is not flat",
			small>>10, big>>10)
	}
}

// TestScaleSmokeStreamed is the `make scale-smoke` gate: a 10^5-entity
// streamed curation driven to completion through repeated injected commit
// crashes. An internal/faulty schedule decides deterministically which
// store commits die; every crash aborts the run mid-ingest, and the next
// attempt resumes from the last committed chunk. The run must finish within
// a bounded number of attempts with the corpus fully ingested and a sane
// weak-supervision report — proving crash recovery composes with scale, not
// just with the small fixtures above. Opt-in via CROSSMODAL_SCALE_SMOKE=1
// (it streams 100k points; see the Makefile target, which also turns on
// -race).
func TestScaleSmokeStreamed(t *testing.T) {
	if os.Getenv("CROSSMODAL_SCALE_SMOKE") == "" {
		t.Skip("scale smoke: set CROSSMODAL_SCALE_SMOKE=1 or run `make scale-smoke`")
	}
	entities := 100_000
	if s := os.Getenv("CROSSMODAL_SCALE_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1000 {
			t.Fatalf("bad CROSSMODAL_SCALE_N %q", s)
		}
		entities = n
	}
	nText := entities * 3 / 5
	nImage := entities - nText
	cfg := synth.DatasetConfig{Seed: 53, NumText: nText, NumUnlabeledImage: nImage, NumHandLabelPool: 500, NumTest: 500}

	opts := streamOptions()
	opts.MaxGraphSeeds = 600
	opts.GraphDevNodes = 200
	opts.Mining.NumericQuantiles = 0 // quantile candidate buffers are O(corpus)
	p := newStreamPipeline(t, opts)
	_, w, task := streamEnv(t)

	// Deterministic crash plan: each commit is a "call" to the faulty
	// schedule, keyed by the target path, with per-path attempt ordinals so
	// a commit that died once succeeds on a later attempt instead of
	// wedging the run forever.
	sched := faulty.Schedule{Seed: 7, ErrorRate: 0.02}
	attempts := make(map[string]int)
	var crashes int
	hook := func(op, path string) error {
		a := attempts[path]
		attempts[path]++
		if d := sched.Decide(xrand.Mix(uint64(len(path))^hashString(path)), op, a); d.Mode == faulty.ModeError {
			crashes++
			return fmt.Errorf("scale smoke: injected commit crash at %s %s: %w", op, path, faulty.ErrInjected)
		}
		return nil
	}

	dir := t.TempDir()
	sopts := StreamOptions{Dir: dir, ChunkSize: 2048, GraphWindow: 2000, CommitHook: hook}
	var sc *StreamedCuration
	const maxAttempts = 30
	attempt := 0
	for ; attempt < maxAttempts; attempt++ {
		var err error
		sc, err = p.CurateStreamed(context.Background(), w, task, cfg, sopts)
		if err == nil {
			break
		}
		if !errors.Is(err, faulty.ErrInjected) {
			t.Fatalf("attempt %d died on a non-injected error: %v", attempt, err)
		}
		sopts.Resume = true
	}
	if sc == nil {
		t.Fatalf("did not complete within %d attempts (%d injected crashes)", maxAttempts, crashes)
	}
	defer sc.Close()
	t.Logf("completed after %d attempts, %d injected commit crashes, %d+%d rows",
		attempt+1, crashes, sc.Text.Rows(), sc.Image.Rows())
	if crashes == 0 {
		t.Error("crash injection never fired; the smoke exercised nothing")
	}
	if sc.Text.Rows() != nText || sc.Image.Rows() != nImage {
		t.Fatalf("ingested %d text / %d image rows, want %d / %d", sc.Text.Rows(), sc.Image.Rows(), nText, nImage)
	}
	if len(sc.ProbLabels) != nImage || len(sc.Covered) != nImage {
		t.Fatalf("curation shape: %d probs, %d covered, want %d", len(sc.ProbLabels), len(sc.Covered), nImage)
	}
	if c := sc.Report.WSCoverage; c <= 0 || c > 1 {
		t.Errorf("ws coverage %v out of range", c)
	}
	if sc.Report.LFCount <= 0 {
		t.Errorf("no LFs mined at scale")
	}
}

// hashString folds a path into a seed for the fault schedule.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// TestCurateStreamedChunkInvariance: the curation must not depend on the
// chunk size, including sizes that do not divide any corpus.
func TestCurateStreamedChunkInvariance(t *testing.T) {
	opts := streamOptions()
	want := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: 128})
	for _, chunk := range []int{97, 400} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			got := runStreamed(t, opts, StreamOptions{Dir: t.TempDir(), ChunkSize: chunk})
			streamedEqual(t, got, want)
		})
	}
}
