package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/labelprop"
	"crossmodal/internal/metrics"
	"crossmodal/internal/synth"
)

// TestDiagLabelProp probes propagation score quality in isolation.
func TestDiagLabelProp(t *testing.T) {
	if testing.Short() || !testing.Verbose() {
		t.Skip("diagnostic probe; run with -v")
	}
	ctx := context.Background()
	lib, ds := testEnv(t)
	opts := smallOptions()
	p, err := NewPipeline(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	textVecs, _ := p.Featurize(ctx, ds.LabeledText)
	imageVecs, _ := p.Featurize(ctx, ds.UnlabeledImage)
	textLabels := synth.Labels(ds.LabeledText)
	imgLabels := synth.Labels(ds.UnlabeledImage)

	gSchema := p.graphSchema()
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(len(textVecs))
	nSeeds, nDev := opts.MaxGraphSeeds, opts.GraphDevNodes
	seedIdx, devIdx := perm[:nSeeds], perm[nSeeds:nSeeds+nDev]

	var nodes []*feature.Vector
	seeds := map[int]float64{}
	seedLabels := make([]int8, nSeeds)
	for si, ti := range seedIdx {
		if textLabels[ti] > 0 {
			seeds[len(nodes)] = 1
		} else {
			seeds[len(nodes)] = 0
		}
		seedLabels[si] = textLabels[ti]
		nodes = append(nodes, textVecs[ti].Reproject(gSchema))
	}
	devStart := len(nodes)
	for _, ti := range devIdx {
		nodes = append(nodes, textVecs[ti].Reproject(gSchema))
	}
	imageStart := len(nodes)
	for _, v := range imageVecs {
		nodes = append(nodes, v.Reproject(gSchema))
	}
	scales := feature.FitScales(gSchema, nodes)
	weights, err := FitGraphWeights(nodes[:nSeeds], seedLabels, scales, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("fitted weights: %v\n", weights)

	for _, variant := range []struct {
		name string
		w    feature.Weights
		k    int
		cand int
	}{
		{"uniform k10", nil, 10, 120},
		{"weighted k10", weights, 10, 120},
		{"weighted k15 cand300", weights, 15, 300},
	} {
		gcfg := opts.Graph
		gcfg.K, gcfg.MaxCandidates = variant.k, variant.cand
		gcfg.Weights = variant.w
		gcfg.Seed = 7
		g, err := labelprop.BuildGraph(ctx, gcfg, nodes, scales)
		if err != nil {
			t.Fatal(err)
		}
		res, err := labelprop.Propagate(ctx, g, seeds, labelprop.PropConfig{Prior: 0.04})
		if err != nil {
			t.Fatal(err)
		}
		devLabels := make([]int8, nDev)
		for i, ti := range devIdx {
			devLabels[i] = textLabels[ti]
		}
		devAUC := metrics.AUPRC(devLabels, res.Scores[devStart:imageStart])
		imgAUC := metrics.AUPRC(imgLabels, res.Scores[imageStart:])
		fmt.Printf("%-22s edges=%d devAUPRC=%.3f (base %.3f) imgAUPRC=%.3f (base %.3f)\n",
			variant.name, g.NumEdges(), devAUC, metrics.BaseRate(devLabels), imgAUC, metrics.BaseRate(imgLabels))
	}
}
