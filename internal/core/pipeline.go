package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/labelmodel"
	"crossmodal/internal/labelprop"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/metrics"
	"crossmodal/internal/mining"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
	"crossmodal/internal/xrand"
)

// Pipeline is the cross-modal adaptation pipeline bound to an
// organizational-resource library.
type Pipeline struct {
	lib  *resource.Library
	opts Options
}

// NewPipeline builds a pipeline. Options zero values fall back to defaults.
func NewPipeline(lib *resource.Library, opts Options) (*Pipeline, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if lib == nil {
		return nil, fmt.Errorf("core: nil resource library")
	}
	return &Pipeline{lib: lib, opts: opts}, nil
}

// Options returns the pipeline's resolved options.
func (p *Pipeline) Options() Options { return p.opts }

// Library returns the pipeline's resource library.
func (p *Pipeline) Library() *resource.Library { return p.lib }

// Featurize maps points into the library's common feature space.
func (p *Pipeline) Featurize(ctx context.Context, pts []*synth.Point) ([]*feature.Vector, error) {
	ctx, span := trace.Start(ctx, "featurize")
	defer span.End()
	span.Add("points", int64(len(pts)))
	return p.lib.Featurize(ctx, mapreduce.Config{Workers: p.opts.Workers}, pts)
}

// EndSchema returns the feature schema the discriminative end model trains
// on: the servable features of the configured model sets, plus the
// modality-specific sets when enabled.
func (p *Pipeline) EndSchema() *feature.Schema {
	sets := append([]string{}, p.opts.ModelSets...)
	if p.opts.IncludeModalityFeatures {
		sets = append(sets, resource.ImageSet, resource.TextSet)
	}
	return p.lib.Schema().Sets(sets...).Servable()
}

// lfSchema returns the feature space LFs may read: the LF sets, including
// nonservable features (LFs run offline, §4.1).
func (p *Pipeline) lfSchema() *feature.Schema {
	return p.lib.Schema().Sets(p.opts.LFSets...)
}

// graphSchema returns the feature space used for propagation-graph edges:
// the LF features plus the new modality's unstructured features (paper
// §4.4: "we use features specific to the new modality to construct edges,
// including unstructured features such as image embeddings").
func (p *Pipeline) graphSchema() *feature.Schema {
	sets := append(append([]string{}, p.opts.LFSets...), resource.ImageSet)
	return p.lib.Schema().Sets(sets...)
}

// Result is a completed pipeline run.
type Result struct {
	// Predictor is the trained end model over the common feature space.
	Predictor fusion.Predictor
	// Curation carries the weak-supervision outputs and featurized
	// corpora; reuse it with Train to fit further model variants without
	// repeating the curation stages.
	Curation *Curation
	// ProbLabels are the weak-supervision probabilistic labels for the
	// unlabeled new-modality corpus, aligned with Dataset.UnlabeledImage.
	ProbLabels []float64
	// Covered marks which unlabeled points received at least one LF vote
	// (only covered points join end-model training).
	Covered []bool
	// Report carries diagnostics of every stage.
	Report Report
}

// Curation is the output of the feature-generation and training-data
// curation stages (Figure 3 A+B): featurized corpora plus probabilistic
// labels for the new modality. One curation supports training any number of
// end-model variants (different feature sets, modalities, or fusion
// architectures).
type Curation struct {
	Dataset    *synth.Dataset
	TextVecs   []*feature.Vector
	ImageVecs  []*feature.Vector
	TextLabels []int8
	ProbLabels []float64
	Covered    []bool
	Report     Report
}

// Report summarizes a pipeline run's curation stages.
type Report struct {
	Task string
	// Mining summarizes LF generation; LFCount the final LF count
	// (including the propagation LF when enabled).
	Mining  mining.Report
	LFCount int
	// DevStats holds each LF's precision/recall/coverage on the labeled
	// old-modality dev set.
	DevStats []lf.Stats
	// Cuts are the tuned propagation-score thresholds; PropIters the
	// propagation iterations (zero when label propagation is disabled).
	Cuts      labelprop.Cuts
	PropIters int
	// LabelModel is the fitted generative model (nil under majority vote).
	LabelModel *labelmodel.Model
	// WS* report the curated labels' quality against the hidden ground
	// truth of the unlabeled corpus — the paper's Table 3 metrics. These
	// are diagnostics: the pipeline itself never trains on this truth.
	WSPrecision, WSRecall, WSF1, WSCoverage float64
	// Timings per stage.
	Timings map[string]time.Duration
}

// Run executes the full pipeline on a dataset and returns the trained
// predictor plus diagnostics. The unlabeled corpus's hidden labels are used
// only to fill the Report's WS quality fields, never for training.
func (p *Pipeline) Run(ctx context.Context, ds *synth.Dataset) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := trace.Start(ctx, "pipeline.run")
	defer span.End()
	cur, err := p.Curate(ctx, ds)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	predictor, err := p.Train(ctx, cur, p.DefaultTrainSpec())
	if err != nil {
		return nil, err
	}
	cur.Report.Timings["train"] = time.Since(start)
	return &Result{
		Predictor:  predictor,
		Curation:   cur,
		ProbLabels: cur.ProbLabels,
		Covered:    cur.Covered,
		Report:     cur.Report,
	}, nil
}

// Curate runs feature generation and training-data curation (stages A and B)
// and returns the reusable curation. When the image modality is disabled the
// weak-supervision stages are skipped entirely.
func (p *Pipeline) Curate(ctx context.Context, ds *synth.Dataset) (*Curation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, curSpan := trace.Start(ctx, "pipeline.curate")
	defer curSpan.End()
	timings := make(map[string]time.Duration)
	stage := func(name string, start time.Time) { timings[name] = time.Since(start) }

	// --- Stage A: feature generation (§3) ---
	start := time.Now()
	textVecs, err := p.Featurize(ctx, ds.LabeledText)
	if err != nil {
		return nil, fmt.Errorf("core: featurize text: %w", err)
	}
	imageVecs, err := p.Featurize(ctx, ds.UnlabeledImage)
	if err != nil {
		return nil, fmt.Errorf("core: featurize image: %w", err)
	}
	stage("featurize", start)
	textLabels := synth.Labels(ds.LabeledText)

	report := Report{Task: ds.Task.Name, Timings: timings}
	if !p.opts.UseImage {
		// Text-only configuration: no new-modality corpus to curate.
		return &Curation{
			Dataset:    ds,
			TextVecs:   textVecs,
			ImageVecs:  imageVecs,
			TextLabels: textLabels,
			ProbLabels: make([]float64, len(imageVecs)),
			Covered:    make([]bool, len(imageVecs)),
			Report:     report,
		}, nil
	}

	// --- Stage B: training data curation (§4) ---
	lfSchema := p.lfSchema()
	lfTextVecs := reprojectAll(textVecs, lfSchema)
	lfImageVecs := reprojectAll(imageVecs, lfSchema)

	start = time.Now()
	lfs, miningReport, err := p.buildLFs(ctx, lfTextVecs, textLabels)
	if err != nil {
		return nil, err
	}
	stage("lf-generation", start)

	start = time.Now()
	applyCtx, applySpan := trace.Start(ctx, "lf.apply")
	devMatrix, err := lf.Apply(applyCtx, mapreduce.Config{Workers: p.opts.Workers}, lfs, lfTextVecs)
	if err != nil {
		applySpan.End()
		return nil, fmt.Errorf("core: apply LFs to dev: %w", err)
	}
	// Drop LFs that near-duplicate a better LF on the dev set: distinct
	// services often observe the same latent attribute, and duplicated
	// votes break the generative model's independence assumption.
	mined := len(lfs)
	if !p.opts.DisableLFDedup {
		lfs, devMatrix = dedupeLFs(lfs, devMatrix, textLabels)
	}
	applySpan.Add("lfs_kept", int64(len(lfs)))
	applySpan.Add("lfs_rejected", int64(mined-len(lfs)))
	matrix, err := lf.Apply(applyCtx, mapreduce.Config{Workers: p.opts.Workers}, lfs, lfImageVecs)
	applySpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: apply LFs: %w", err)
	}
	stage("lf-apply", start)

	report.Mining = miningReport
	report.DevStats = lf.EvaluateAll(devMatrix, textLabels)

	if p.opts.UseLabelProp {
		start = time.Now()
		lpCtx, lpSpan := trace.Start(ctx, "labelprop")
		cuts, iters, err := p.propagate(lpCtx, textVecs, textLabels, imageVecs, matrix, devMatrix)
		lpSpan.End()
		if err != nil {
			return nil, err
		}
		report.Cuts, report.PropIters = cuts, iters
		stage("label-propagation", start)
	}
	report.LFCount = matrix.NumLFs()

	start = time.Now()
	lmCtx, lmSpan := trace.Start(ctx, "labelmodel")
	probs, covered, lm, err := p.denoise(lmCtx, matrix, devMatrix, textLabels)
	lmSpan.End()
	if err != nil {
		return nil, err
	}
	report.LabelModel = lm
	stage("label-model", start)
	report.WSCoverage = coverageRate(covered)
	report.WSPrecision, report.WSRecall, report.WSF1 = wsQuality(probs, covered, ds.UnlabeledImage, metrics.BaseRate(textLabels))

	return &Curation{
		Dataset:    ds,
		TextVecs:   textVecs,
		ImageVecs:  imageVecs,
		TextLabels: textLabels,
		ProbLabels: probs,
		Covered:    covered,
		Report:     report,
	}, nil
}

// dedupeLFs greedily keeps LFs in descending dev-quality order, dropping
// any whose non-abstain votes agree with an already kept LF on >= 95% of
// their overlap (with overlap covering >= 60% of the smaller LF's votes).
func dedupeLFs(lfs []*lf.LF, devMatrix *lf.Matrix, devLabels []int8) ([]*lf.LF, *lf.Matrix) {
	stats := lf.EvaluateAll(devMatrix, devLabels)
	order := make([]int, len(lfs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		qa := stats[order[a]].Precision * stats[order[a]].Recall
		qb := stats[order[b]].Precision * stats[order[b]].Recall
		if qa != qb {
			return qa > qb
		}
		return lfs[order[a]].Name < lfs[order[b]].Name
	})
	cols := make([][]int8, len(lfs))
	for j := range lfs {
		cols[j] = devMatrix.Column(j)
	}
	var keptIdx []int
	for _, j := range order {
		dup := false
		for _, k := range keptIdx {
			var agree, overlap, votesJ, votesK int
			for i := range cols[j] {
				vj, vk := cols[j][i], cols[k][i]
				if vj != 0 {
					votesJ++
				}
				if vk != 0 {
					votesK++
				}
				if vj != 0 && vk != 0 {
					overlap++
					if vj == vk {
						agree++
					}
				}
			}
			smaller := votesJ
			if votesK < smaller {
				smaller = votesK
			}
			if smaller > 0 && overlap >= smaller*3/5 && float64(agree) >= 0.95*float64(overlap) {
				dup = true
				break
			}
		}
		if !dup {
			keptIdx = append(keptIdx, j)
		}
	}
	sort.Ints(keptIdx)
	if len(keptIdx) == len(lfs) {
		return lfs, devMatrix
	}
	kept := make([]*lf.LF, len(keptIdx))
	names := make([]string, len(keptIdx))
	votes := make([][]int8, devMatrix.NumPoints())
	for i := range votes {
		row := make([]int8, len(keptIdx))
		for c, j := range keptIdx {
			row[c] = devMatrix.Votes[i][j]
		}
		votes[i] = row
	}
	for c, j := range keptIdx {
		kept[c] = lfs[j]
		names[c] = lfs[j].Name
	}
	return kept, &lf.Matrix{Votes: votes, Names: names}
}

func reprojectAll(vecs []*feature.Vector, schema *feature.Schema) []*feature.Vector {
	out := make([]*feature.Vector, len(vecs))
	for i, v := range vecs {
		out[i] = v.Reproject(schema)
	}
	return out
}

// buildLFs generates labeling functions from the labeled old-modality corpus
// per the configured source.
func (p *Pipeline) buildLFs(ctx context.Context, devVecs []*feature.Vector, devLabels []int8) ([]*lf.LF, mining.Report, error) {
	switch p.opts.LFSource {
	case ExpertLFs:
		expert := lf.DefaultExpert()
		rng := xrand.New(p.opts.Seed ^ 0xe4be27)
		lfs, err := expert.Develop(devVecs, devLabels, rng)
		if err != nil {
			return nil, mining.Report{}, fmt.Errorf("core: expert LFs: %w", err)
		}
		return lfs, mining.Report{}, nil
	default:
		if p.opts.StreamMining {
			corpus := &chunkedCorpus{vecs: devVecs, labels: devLabels, chunk: 2048}
			lfs, rep, err := mining.MineStream(ctx, mapreduce.Config{Workers: p.opts.Workers}, p.opts.Mining, corpus)
			if err != nil {
				return nil, rep, fmt.Errorf("core: mine LFs (streamed): %w", err)
			}
			return lfs, rep, nil
		}
		lfs, rep, err := mining.Mine(ctx, mapreduce.Config{Workers: p.opts.Workers}, p.opts.Mining, devVecs, devLabels)
		if err != nil {
			return nil, rep, fmt.Errorf("core: mine LFs: %w", err)
		}
		return lfs, rep, nil
	}
}

// graphSplit deterministically splits the labeled corpus into propagation
// seed indices and held-out cut-tuning indices. Both the in-memory and the
// streamed curation paths derive their node layout from this one split.
func (p *Pipeline) graphSplit(nText int) (seedIdx, devIdx []int, err error) {
	rng := xrand.New(p.opts.Seed ^ 0x9a6b)
	perm := rng.Perm(nText)
	nSeeds := min(p.opts.MaxGraphSeeds, len(perm))
	nDev := min(p.opts.GraphDevNodes, len(perm)-nSeeds)
	if nDev == 0 && len(perm) >= 8 {
		// Small corpus: split three quarters seeds, one quarter dev.
		nSeeds = len(perm) * 3 / 4
		nDev = len(perm) - nSeeds
	}
	if nSeeds == 0 || nDev == 0 {
		return nil, nil, fmt.Errorf("core: labeled corpus too small for propagation (%d points)", nText)
	}
	return perm[:nSeeds], perm[nSeeds : nSeeds+nDev], nil
}

// tunePropCuts turns held-out propagation scores into vote thresholds.
// clampScores are the unlabeled-corpus scores bounding the negative cut to
// the clearly negative tail (the paper's "large volumes of negative
// examples"): a blanket negative vote near the prior would crush borderline
// positives.
func (p *Pipeline) tunePropCuts(devScores []float64, devLabels []int8, base float64, clampScores []float64) (labelprop.Cuts, error) {
	posTarget := p.opts.PosCutLift * base
	if posTarget < 0.03 {
		posTarget = 0.03
	}
	if posTarget > 0.8 {
		posTarget = 0.8
	}
	// The negative cut must deplete positives below the base rate, not
	// merely match the (already high) negative prior.
	negTarget := 1 - base/3
	if negTarget < p.opts.NegCutPrecision {
		negTarget = p.opts.NegCutPrecision
	}
	cuts, err := labelprop.ChooseCuts(devScores, devLabels, posTarget, negTarget)
	if err != nil {
		return labelprop.Cuts{}, fmt.Errorf("core: choose cuts: %w", err)
	}
	sorted := append([]float64(nil), clampScores...)
	sort.Float64s(sorted)
	if q := sorted[len(sorted)/4]; cuts.Neg > q {
		cuts.Neg = q
	}
	return cuts, nil
}

// appendPropLF appends the propagation score LF to the image matrix and
// mirrors it onto the labeled dev matrix (scores of the held-out, unseeded
// text nodes) so the dev-anchored label model can estimate its reliability
// like any other LF. Dev rows outside the held-out sample abstain.
func appendPropLF(matrix, devMatrix *lf.Matrix, cuts labelprop.Cuts, imageScores []float64, imagePresent []bool, devIdx []int, devScores []float64, devReached []bool) error {
	scoreLF := &lf.ScoreLF{
		Name:    "labelprop",
		Source:  "labelprop",
		Scores:  imageScores,
		Present: imagePresent,
		PosCut:  cuts.Pos,
		NegCut:  cuts.Neg,
	}
	if err := matrix.AppendScoreLF(scoreLF); err != nil {
		return fmt.Errorf("core: append propagation LF: %w", err)
	}
	devVotes := &lf.ScoreLF{
		Name:    "labelprop",
		Source:  "labelprop",
		Scores:  make([]float64, devMatrix.NumPoints()),
		Present: make([]bool, devMatrix.NumPoints()),
		PosCut:  cuts.Pos,
		NegCut:  cuts.Neg,
	}
	for i, ti := range devIdx {
		devVotes.Scores[ti] = devScores[i]
		devVotes.Present[ti] = devReached[i]
	}
	if err := devMatrix.AppendScoreLF(devVotes); err != nil {
		return fmt.Errorf("core: append dev propagation LF: %w", err)
	}
	return nil
}

// propagate runs label propagation from labeled text seeds through the
// common-feature graph to the unlabeled image corpus, tunes vote cuts on
// held-out text, and appends the resulting score LF to the image matrix.
func (p *Pipeline) propagate(ctx context.Context, textVecs []*feature.Vector, textLabels []int8, imageVecs []*feature.Vector, matrix, devMatrix *lf.Matrix) (labelprop.Cuts, int, error) {
	gSchema := p.graphSchema()
	seedIdx, devIdx, err := p.graphSplit(len(textVecs))
	if err != nil {
		return labelprop.Cuts{}, 0, err
	}
	nSeeds, nDev := len(seedIdx), len(devIdx)

	nodes := make([]*feature.Vector, 0, nSeeds+nDev+len(imageVecs))
	seeds := make(map[int]float64, nSeeds)
	var posSeeds float64
	for _, ti := range seedIdx {
		if textLabels[ti] > 0 {
			seeds[len(nodes)] = 1
			posSeeds++
		} else {
			seeds[len(nodes)] = 0
		}
		nodes = append(nodes, textVecs[ti].Reproject(gSchema))
	}
	devStart := len(nodes)
	for _, ti := range devIdx {
		nodes = append(nodes, textVecs[ti].Reproject(gSchema))
	}
	imageStart := len(nodes)
	nodes = append(nodes, reprojectAll(imageVecs, gSchema)...)

	scales := feature.FitScales(gSchema, nodes)
	gcfg := p.opts.Graph
	gcfg.Seed = p.opts.Seed ^ 0x6a7f
	gcfg.Workers = p.opts.Workers
	if gcfg.Weights == nil && !p.opts.UniformGraphWeights {
		// Learn per-feature edge weights from the seeded labeled nodes so
		// discriminative features dominate the graph.
		seedLabels := make([]int8, nSeeds)
		for si, ti := range seedIdx {
			seedLabels[si] = textLabels[ti]
		}
		weights, werr := FitGraphWeights(nodes[:nSeeds], seedLabels, scales, 20000, p.opts.Seed^0x77)
		if werr == nil {
			gcfg.Weights = weights
		}
	}
	graph, err := labelprop.BuildGraph(ctx, gcfg, nodes, scales)
	if err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: build graph: %w", err)
	}
	pcfg := p.opts.Prop
	pcfg.Prior = posSeeds / float64(nSeeds)
	res, err := labelprop.Propagate(ctx, graph, seeds, pcfg)
	if err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: propagate: %w", err)
	}

	devScores := res.Scores[devStart:imageStart]
	devLabels := make([]int8, nDev)
	for i, ti := range devIdx {
		devLabels[i] = textLabels[ti]
	}
	cuts, err := p.tunePropCuts(devScores, devLabels, posSeeds/float64(nSeeds), res.Scores[imageStart:])
	if err != nil {
		return labelprop.Cuts{}, 0, err
	}
	if err := appendPropLF(matrix, devMatrix, cuts,
		res.Scores[imageStart:], res.Reached[imageStart:],
		devIdx, devScores, res.Reached[devStart:imageStart]); err != nil {
		return labelprop.Cuts{}, 0, err
	}
	return cuts, res.Iters, nil
}

// denoise converts the vote matrix into probabilistic labels via the
// dev-anchored label model (or majority vote). Each LF's class-conditional
// reliability is estimated on the labeled old-modality dev matrix (§4.2),
// then applied to the new modality's votes.
func (p *Pipeline) denoise(ctx context.Context, matrix, devMatrix *lf.Matrix, textLabels []int8) ([]float64, []bool, *labelmodel.Model, error) {
	covered := labelmodel.Covered(matrix)
	if !p.opts.UseGenerative {
		return labelmodel.MajorityVote(matrix), covered, nil, nil
	}
	lmCfg := p.opts.LabelModel
	if lmCfg.ClassBalance <= 0 {
		lmCfg.ClassBalance = metrics.BaseRate(textLabels)
	}
	var lm *labelmodel.Model
	var err error
	if p.opts.UseEMLabelModel {
		lm, err = labelmodel.FitGenerative(ctx, matrix, lmCfg)
	} else {
		lm, err = labelmodel.FitSupervised(ctx, devMatrix, textLabels, lmCfg)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: fit label model: %w", err)
	}
	probs, err := lm.Predict(matrix)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: label model predict: %w", err)
	}
	return probs, covered, lm, nil
}

// TrainSpec selects one end-model variant to train from a curation.
type TrainSpec struct {
	// ModelSets are the organizational service sets available to the
	// model (servable features only).
	ModelSets []string
	// IncludeModalityFeatures adds the image- and text-specific sets.
	IncludeModalityFeatures bool
	// UseText / UseImage select the training corpora.
	UseText, UseImage bool
	// Fusion selects the architecture.
	Fusion FusionKind
	// Model configures the network.
	Model model.Config
	// Schema, when non-nil, overrides the schema composed from ModelSets
	// (e.g. the embedding-only baseline schema).
	Schema *feature.Schema
	// Extra appends additional training corpora (e.g. hand-reviewed
	// points from an active-learning loop) alongside the curation's.
	Extra []fusion.Corpus
}

// DefaultTrainSpec returns the spec implied by the pipeline options.
func (p *Pipeline) DefaultTrainSpec() TrainSpec {
	return TrainSpec{
		ModelSets:               p.opts.ModelSets,
		IncludeModalityFeatures: p.opts.IncludeModalityFeatures,
		UseText:                 p.opts.UseText,
		UseImage:                p.opts.UseImage,
		Fusion:                  p.opts.Fusion,
		Model:                   p.opts.Model,
	}
}

// modelConfig defaults the model's Workers knob from the pipeline options
// when the caller left it unset, so one -workers flag steers every stage.
func (p *Pipeline) modelConfig(mcfg model.Config) model.Config {
	if mcfg.Workers == 0 {
		mcfg.Workers = p.opts.Workers
	}
	return mcfg
}

// Train fits one end-model variant (stage C, §5) from a curation.
func (p *Pipeline) Train(ctx context.Context, cur *Curation, spec TrainSpec) (fusion.Predictor, error) {
	if !spec.UseText && !spec.UseImage {
		return nil, fmt.Errorf("core: train spec enables no modality")
	}
	ctx, span := trace.Start(ctx, "train")
	defer span.End()
	span.SetStr("fusion", string(spec.Fusion))
	schema := spec.Schema
	if schema == nil {
		schema = p.SchemaFor(spec.ModelSets, spec.IncludeModalityFeatures, spec.IncludeModalityFeatures)
	}
	cfg := fusion.Config{Schema: schema, Model: p.modelConfig(spec.Model), MaxVocab: p.opts.MaxVocab}
	var corpora []fusion.Corpus
	var textCorpus, imageCorpus fusion.Corpus
	if spec.UseText {
		targets := make([]float64, len(cur.TextLabels))
		for i, l := range cur.TextLabels {
			if l > 0 {
				targets[i] = 1
			}
		}
		textCorpus = fusion.Corpus{Name: "text", Vectors: cur.TextVecs, Targets: targets}
		corpora = append(corpora, textCorpus)
	}
	if spec.UseImage {
		var vecs []*feature.Vector
		var targets []float64
		for i, v := range cur.ImageVecs {
			if cur.Covered[i] {
				vecs = append(vecs, v)
				targets = append(targets, cur.ProbLabels[i])
			}
		}
		if len(vecs) == 0 {
			return nil, fmt.Errorf("core: weak supervision covered no image points")
		}
		imageCorpus = fusion.Corpus{Name: "image", Vectors: vecs, Targets: targets}
		corpora = append(corpora, imageCorpus)
	}
	corpora = append(corpora, spec.Extra...)
	switch spec.Fusion {
	case IntermediateFusion:
		return fusion.TrainIntermediate(ctx, corpora, cfg)
	case DeViSE:
		if !spec.UseText || !spec.UseImage {
			return nil, fmt.Errorf("core: DeViSE needs both modalities")
		}
		return fusion.TrainDeViSE(ctx, []fusion.Corpus{textCorpus}, imageCorpus, cfg)
	default:
		return fusion.TrainEarly(ctx, corpora, cfg)
	}
}

func coverageRate(covered []bool) float64 {
	if len(covered) == 0 {
		return 0
	}
	n := 0
	for _, c := range covered {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(covered))
}

// wsQuality measures the curated labels against the hidden ground truth of
// the unlabeled corpus (diagnostics only; paper Table 3 metrics). The
// decision cut is prior-relative — min(0.5, 5 × class balance) — because in
// heavily imbalanced tasks a well-calibrated posterior rarely crosses 0.5
// even for clear positives, yet a posterior several times the prior is a
// confident positive call.
func wsQuality(probs []float64, covered []bool, pts []*synth.Point, prior float64) (precision, recall, f1 float64) {
	return wsQualityLabels(probs, covered, synth.Labels(pts), prior)
}

// wsQualityLabels is wsQuality over bare truth labels — the streamed path
// retains only the hidden labels of the generated points, not the points.
func wsQualityLabels(probs []float64, covered []bool, labels []int8, prior float64) (precision, recall, f1 float64) {
	cut := 0.5
	if rel := 5 * prior; rel < cut && rel > 0 {
		cut = rel
	}
	var c metrics.Confusion
	for i, label := range labels {
		if !covered[i] {
			// Uncovered points count as missed positives for recall.
			if label > 0 {
				c.FN++
			} else {
				c.TN++
			}
			continue
		}
		pred := int8(-1)
		if probs[i] >= cut {
			pred = 1
		}
		c.Add(label, pred)
	}
	return c.Precision(), c.Recall(), c.F1()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
