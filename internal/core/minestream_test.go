package core

import (
	"context"
	"math"

	"crossmodal/internal/feature"
	"testing"
)

// Options.StreamMining must be a pure plumbing change: curation through the
// chunked MineStream path yields bit-identical probabilistic labels,
// coverage, and LF counts to the one-shot mining path. The lifecycle
// controller relies on this — its retrains stream, its golden log must not
// depend on which mining path ran.
func TestStreamMiningCurationBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lib, ds := testEnv(t)

	run := func(stream bool) *Curation {
		opts := smallOptions()
		opts.StreamMining = stream
		p, err := NewPipeline(lib, opts)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := p.Curate(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		return cur
	}

	oneShot := run(false)
	streamed := run(true)

	if a, b := oneShot.Report.LFCount, streamed.Report.LFCount; a != b {
		t.Fatalf("LF count differs: one-shot %d, streamed %d", a, b)
	}
	if len(oneShot.ProbLabels) != len(streamed.ProbLabels) {
		t.Fatalf("prob label count differs: %d vs %d", len(oneShot.ProbLabels), len(streamed.ProbLabels))
	}
	for i := range oneShot.ProbLabels {
		if math.Float64bits(oneShot.ProbLabels[i]) != math.Float64bits(streamed.ProbLabels[i]) {
			t.Fatalf("prob label %d differs: %v vs %v", i, oneShot.ProbLabels[i], streamed.ProbLabels[i])
		}
		if oneShot.Covered[i] != streamed.Covered[i] {
			t.Fatalf("coverage %d differs", i)
		}
	}
}

// chunkedCorpus must deliver every row exactly once, in order, for any chunk
// size — including sizes that do not divide the corpus length.
func TestChunkedCorpusScan(t *testing.T) {
	lib, ds := testEnv(t)
	p, err := NewPipeline(lib, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	vecs, err := p.Featurize(context.Background(), ds.LabeledText[:100])
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int8, len(vecs))
	for i := range labels {
		labels[i] = int8(i % 3)
	}
	for _, chunk := range []int{1, 7, 100, 1000, 0} {
		c := &chunkedCorpus{vecs: vecs, labels: labels, chunk: chunk}
		if c.Schema() != vecs[0].Schema() {
			t.Fatal("schema mismatch")
		}
		var gotVecs int
		var gotLabels []int8
		err := c.Scan(context.Background(), func(vs []*feature.Vector, ls []int8) error {
			gotVecs += len(vs)
			gotLabels = append(gotLabels, ls...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if gotVecs != len(vecs) || len(gotLabels) != len(labels) {
			t.Fatalf("chunk %d: scanned %d vecs / %d labels, want %d", chunk, gotVecs, len(gotLabels), len(vecs))
		}
		for i := range labels {
			if gotLabels[i] != labels[i] {
				t.Fatalf("chunk %d: label %d out of order", chunk, i)
			}
		}
	}

	// Context cancellation aborts the scan.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &chunkedCorpus{vecs: vecs, labels: labels, chunk: 10}
	if err := c.Scan(ctx, func([]*feature.Vector, []int8) error { return nil }); err == nil {
		t.Error("canceled scan returned nil error")
	}
}
