// Package core implements the paper's primary contribution: the end-to-end
// cross-modal adaptation pipeline (Figure 3). Given labeled data of existing
// modalities and unlabeled data of a new modality, it
//
//  1. generates a common feature space by applying organizational resources
//     to both modalities (§3, internal/resource);
//  2. curates probabilistic training labels for the new modality by weak
//     supervision — automatically mined labeling functions (§4.3,
//     internal/mining) augmented with label propagation for borderline
//     examples (§4.4, internal/labelprop) and denoised by a generative
//     label model (§4.1, internal/labelmodel);
//  3. trains a multi-modal end model over all data and label sources (§5,
//     internal/fusion).
package core

import (
	"fmt"

	"crossmodal/internal/labelmodel"
	"crossmodal/internal/labelprop"
	"crossmodal/internal/mining"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
)

// FusionKind selects the multi-modal training architecture (§5).
type FusionKind string

// The three architectures of Figure 4.
const (
	EarlyFusion        FusionKind = "early"
	IntermediateFusion FusionKind = "intermediate"
	DeViSE             FusionKind = "devise"
)

// LFSource selects how labeling functions are authored.
type LFSource string

// Mined LFs come from frequent itemset mining (§4.3); Expert LFs from the
// simulated human expert (§6.7.1).
const (
	MinedLFs  LFSource = "mined"
	ExpertLFs LFSource = "expert"
)

// Options configures a Pipeline run.
type Options struct {
	// LFSets are the service sets whose features feed labeling functions
	// (nonservable features included — LFs run offline, §4.1).
	// Default: A, B, C, D.
	LFSets []string
	// ModelSets are the service sets available to the discriminative end
	// model (servable features only). Default: same as LFSets.
	ModelSets []string
	// IncludeModalityFeatures adds the modality-specific feature sets
	// (pre-trained image embeddings, text-only features) to the end
	// model, matching the paper's T+... and I+... configurations.
	// Default true.
	IncludeModalityFeatures bool
	// UseText / UseImage include each modality's corpus in end-model
	// training (the §6.6 lesion study toggles these). Both default true.
	UseText, UseImage bool

	// LFSource selects mined or simulated-expert LFs. Default MinedLFs.
	LFSource LFSource
	// Expert configures the simulated expert when LFSource is ExpertLFs.
	Expert *struct{}

	// UseLabelProp augments mined LFs with a label-propagation LF (§4.4).
	// Default true.
	UseLabelProp bool
	// UseGenerative denoises LF votes with the generative model; false
	// falls back to majority vote. Default true.
	UseGenerative bool
	// UseEMLabelModel fits the label model by unsupervised EM on the
	// new-modality vote matrix instead of anchoring it on the labeled dev
	// matrix (ablation; dev anchoring is the default and the better
	// choice — see EXPERIMENTS.md).
	UseEMLabelModel bool
	// UniformGraphWeights disables the dev-learned per-feature edge
	// weights in the propagation graph (ablation).
	UniformGraphWeights bool
	// DisableLFDedup keeps near-duplicate LFs (ablation; duplicates break
	// the label model's independence assumption).
	DisableLFDedup bool

	// Fusion selects the training architecture. Default EarlyFusion.
	Fusion FusionKind

	// Mining, Graph, Prop, LabelModel and Model configure the stages.
	Mining     mining.Config
	Graph      labelprop.GraphConfig
	Prop       labelprop.PropConfig
	LabelModel labelmodel.Config
	Model      model.Config

	// MaxGraphSeeds bounds how many labeled text points seed the
	// propagation graph; GraphDevNodes how many labeled text points are
	// held out unseeded to tune the score cuts (§4.4). Defaults 3000 and
	// 1000.
	MaxGraphSeeds, GraphDevNodes int
	// PosCutLift is the dev-set precision target for the positive
	// propagation-score cut, as a multiple of the dev positive rate
	// (clamped to [0.15, 0.8]); NegCutPrecision is the absolute precision
	// target for the negative cut. Defaults 6 and 0.97.
	PosCutLift, NegCutPrecision float64

	// StreamMining routes mined-LF discovery through mining.MineStream over
	// a chunked view of the dev corpus instead of the one-shot mining.Mine
	// call. Results are identical (MineStream's contract); the lifecycle
	// controller turns this on so retraining exercises the same streamed
	// path a production re-mine over the disk store would.
	StreamMining bool

	// MaxVocab caps one-hot vocabularies in the end model (default 0:
	// unlimited).
	MaxVocab int
	// Workers parallelizes featurization and LF application.
	Workers int
	// Seed drives all pipeline randomness.
	Seed int64
}

// DefaultOptions returns the configuration used by the experiment suite:
// all four service sets for both LFs and the end model, mined LFs with label
// propagation, the generative label model, and early fusion over both
// modalities.
func DefaultOptions() Options {
	return Options{
		LFSets:                  resource.ABCD,
		IncludeModalityFeatures: true,
		UseText:                 true,
		UseImage:                true,
		LFSource:                MinedLFs,
		UseLabelProp:            true,
		UseGenerative:           true,
		Fusion:                  EarlyFusion,
		Mining:                  mining.DefaultConfig(),
		Graph: labelprop.GraphConfig{
			K:             10,
			BlockFeatures: []string{"topic", "topic_coarse"},
			MaxCandidates: 200,
		},
		MaxGraphSeeds:   3000,
		GraphDevNodes:   1000,
		PosCutLift:      6,
		NegCutPrecision: 0.97,
		Model:           model.Config{Epochs: 6, LearningRate: 0.02, Seed: 11},
		Seed:            11,
	}
}

func (o Options) withDefaults() Options {
	if len(o.LFSets) == 0 {
		o.LFSets = resource.ABCD
	}
	if len(o.ModelSets) == 0 {
		o.ModelSets = o.LFSets
	}
	if o.LFSource == "" {
		o.LFSource = MinedLFs
	}
	if o.Fusion == "" {
		o.Fusion = EarlyFusion
	}
	if o.MaxGraphSeeds <= 0 {
		o.MaxGraphSeeds = 3000
	}
	if o.GraphDevNodes <= 0 {
		o.GraphDevNodes = 1000
	}
	if o.PosCutLift <= 0 {
		o.PosCutLift = 6
	}
	if o.NegCutPrecision <= 0 {
		o.NegCutPrecision = 0.97
	}
	if o.Mining.MaxOrder == 0 {
		o.Mining = mining.DefaultConfig()
	}
	return o
}

func (o Options) validate() error {
	if !o.UseText && !o.UseImage {
		return fmt.Errorf("core: at least one modality must be enabled")
	}
	switch o.Fusion {
	case EarlyFusion, IntermediateFusion, DeViSE:
	default:
		return fmt.Errorf("core: unknown fusion kind %q", o.Fusion)
	}
	switch o.LFSource {
	case MinedLFs, ExpertLFs:
	default:
		return fmt.Errorf("core: unknown LF source %q", o.LFSource)
	}
	if o.Fusion == DeViSE && (!o.UseText || !o.UseImage) {
		return fmt.Errorf("core: DeViSE needs both an old and a new modality")
	}
	return nil
}
