package core

import (
	"context"

	"crossmodal/internal/feature"
)

// chunkedCorpus exposes an in-memory dev corpus to mining.MineStream as a
// sequence of fixed-size chunks, so Options.StreamMining exercises the real
// chunk-merge path (counts accumulated across Scan callbacks) rather than
// degenerating into a single whole-corpus chunk.
type chunkedCorpus struct {
	vecs   []*feature.Vector
	labels []int8
	chunk  int
}

func (c *chunkedCorpus) Schema() *feature.Schema { return c.vecs[0].Schema() }

func (c *chunkedCorpus) Scan(ctx context.Context, fn func([]*feature.Vector, []int8) error) error {
	n := c.chunk
	if n <= 0 {
		n = 2048
	}
	for lo := 0; lo < len(c.vecs); lo += n {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(lo+n, len(c.vecs))
		if err := fn(c.vecs[lo:hi], c.labels[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}
