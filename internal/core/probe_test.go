package core

import (
	"fmt"
	"testing"

	"crossmodal/internal/synth"
)

func TestDiagTopicDecomposition(t *testing.T) {
	if !testing.Verbose() {
		t.Skip()
	}
	lib, ds := testEnv(t)
	for _, topic := range []int{3, 4} {
		for _, corpus := range []struct {
			name string
			pts  []*synth.Point
		}{{"text", ds.LabeledText}, {"image", ds.UnlabeledImage}} {
			var trueT, obsT, posTrueT, posObsT, pos int
			for _, p := range corpus.pts {
				v := lib.FeaturizePoint(p)
				obs := v.Get("topic").HasCategory(fmt.Sprintf("t%d", topic))
				if p.Label > 0 {
					pos++
				}
				if p.Entity.Topic == topic {
					trueT++
					if p.Label > 0 {
						posTrueT++
					}
				}
				if obs {
					obsT++
					if p.Label > 0 {
						posObsT++
					}
				}
			}
			n := float64(len(corpus.pts))
			fmt.Printf("t%d %-5s: P(true)=%.4f P(obs)=%.4f P(pos|true)=%.3f P(pos|obs)=%.3f base=%.3f\n",
				topic, corpus.name, float64(trueT)/n, float64(obsT)/n,
				safe(posTrueT, trueT), safe(posObsT, obsT), float64(pos)/n)
		}
	}
}

func safe(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
