package core

import (
	"context"
	"fmt"

	"crossmodal/internal/feature"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
	"crossmodal/internal/trace"
	"crossmodal/internal/tuner"
	"crossmodal/internal/xrand"
)

// TuneResult is the outcome of end-model hyperparameter tuning.
type TuneResult struct {
	// Config is the best model configuration found.
	Config model.Config
	// Score is its validation AUPRC.
	Score float64
	// Trials is the full search history.
	Trials []tuner.Trial
}

// TuneModel searches end-model hyperparameters (learning rate, L2, epochs,
// hidden width) with random search — the role Vizier plays in the paper's
// TFX pipelines (§6.3). The objective trains the spec'd model variant on the
// curation with a portion of the labeled old-modality corpus held out, and
// scores validation AUPRC on that held-out portion (labels of the new
// modality are never touched). The returned Config can be assigned to
// TrainSpec.Model for the final fit.
func (p *Pipeline) TuneModel(ctx context.Context, cur *Curation, spec TrainSpec, trials int, seed int64) (TuneResult, error) {
	if trials <= 0 {
		trials = 12
	}
	ctx, span := trace.Start(ctx, "tune")
	defer span.End()
	if len(cur.TextVecs) < 50 {
		return TuneResult{}, fmt.Errorf("core: labeled corpus too small to tune (%d points)", len(cur.TextVecs))
	}
	// Hold out 25% of the labeled text corpus for validation.
	rng := xrand.New(seed ^ 0x7e57)
	perm := rng.Perm(len(cur.TextVecs))
	cutoff := len(perm) * 3 / 4
	trainCur := *cur
	trainCur.TextVecs = make([]*feature.Vector, 0, cutoff)
	trainCur.TextLabels = make([]int8, 0, cutoff)
	var valVecs []*feature.Vector
	var valLabels []int8
	for i, idx := range perm {
		if i < cutoff {
			trainCur.TextVecs = append(trainCur.TextVecs, cur.TextVecs[idx])
			trainCur.TextLabels = append(trainCur.TextLabels, cur.TextLabels[idx])
		} else {
			valVecs = append(valVecs, cur.TextVecs[idx])
			valLabels = append(valLabels, cur.TextLabels[idx])
		}
	}
	if metrics.BaseRate(valLabels) == 0 {
		return TuneResult{}, fmt.Errorf("core: validation split has no positives")
	}

	space := new(tuner.Space).
		LogFloat("lr", 0.002, 0.1).
		LogFloat("l2", 1e-6, 1e-2).
		Int("epochs", 3, 10).
		Choice("arch", "linear", "hidden16", "hidden32")

	objective := func(params tuner.Params) (float64, error) {
		mcfg := model.Config{
			LearningRate: params.Float("lr"),
			L2:           params.Float("l2"),
			Epochs:       params.Int("epochs"),
			Seed:         seed,
		}
		switch params.Choice("arch") {
		case "hidden16":
			mcfg.Hidden = []int{16}
		case "hidden32":
			mcfg.Hidden = []int{32}
		}
		trialSpec := spec
		trialSpec.Model = mcfg
		pred, err := p.Train(ctx, &trainCur, trialSpec)
		if err != nil {
			return 0, err
		}
		return metrics.AUPRC(valLabels, pred.PredictBatch(valVecs)), nil
	}
	best, history, err := tuner.RandomSearch(ctx, space, objective, trials, seed)
	if err != nil {
		return TuneResult{}, err
	}
	bestCfg := model.Config{
		LearningRate: best.Params.Float("lr"),
		L2:           best.Params.Float("l2"),
		Epochs:       best.Params.Int("epochs"),
		Seed:         seed,
	}
	switch best.Params.Choice("arch") {
	case "hidden16":
		bestCfg.Hidden = []int{16}
	case "hidden32":
		bestCfg.Hidden = []int{32}
	}
	return TuneResult{Config: bestCfg, Score: best.Score, Trials: history}, nil
}
