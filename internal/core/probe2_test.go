package core

import (
	"fmt"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/metrics"
	"crossmodal/internal/synth"
)

func TestDiagEmbeddingCeiling(t *testing.T) {
	if !testing.Verbose() {
		t.Skip()
	}
	lib, ds := testEnv(t)
	w := lib.World()
	// Ideal linear score: projection onto the risky topic directions.
	dir := make([]float64, w.Config().EmbeddingDim)
	for topic := 0; topic < w.Config().NumTopics; topic++ {
		r := w.TopicRisk(topic)
		if r > 0.7 {
			emb := w.TopicEmbedding(topic)
			for i := range dir {
				dir[i] += r * emb[i]
			}
		}
	}
	var scores []float64
	var labels []int8
	for _, p := range ds.TestImage {
		v := lib.FeaturizePoint(p).Get("img_embedding")
		if v.Missing {
			continue
		}
		var s float64
		for i := range dir {
			s += dir[i] * v.Vec[i]
		}
		scores = append(scores, s)
		labels = append(labels, p.Label)
	}
	fmt.Printf("ideal-direction AUPRC=%.3f base=%.3f\n", metrics.AUPRC(labels, scores), metrics.BaseRate(labels))
	// Oracle upper bound: score = true latent task score.
	var ts []float64
	for _, p := range ds.TestImage {
		ts = append(ts, ds.Task.Score(w, p.Entity))
	}
	fmt.Printf("latent-score AUPRC=%.3f\n", metrics.AUPRC(synth.Labels(ds.TestImage), ts))
	_ = feature.Jaccard
}
