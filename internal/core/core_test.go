package core

import (
	"context"
	"os"
	"sync"
	"testing"

	"crossmodal/internal/fusion"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// testEnv caches one world/library/dataset across tests (building them is
// the expensive part).
var (
	envOnce sync.Once
	envLib  *resource.Library
	envDS   *synth.Dataset
)

func testEnv(t *testing.T) (*resource.Library, *synth.Dataset) {
	t.Helper()
	envOnce.Do(func() {
		w := synth.MustWorld(synth.DefaultConfig())
		lib, err := resource.StandardLibrary(w)
		if err != nil {
			t.Fatal(err)
		}
		task, err := synth.TaskByName("CT1")
		if err != nil {
			t.Fatal(err)
		}
		size := 1
		if full := os.Getenv("CROSSMODAL_FULL"); full != "" {
			size = 4
		}
		ds, err := synth.BuildDataset(w, task, synth.DatasetConfig{
			Seed:              21,
			NumText:           5000 * size,
			NumUnlabeledImage: 2500 * size,
			NumHandLabelPool:  2500 * size,
			NumTest:           2000 * size,
		})
		if err != nil {
			t.Fatal(err)
		}
		envLib, envDS = lib, ds
	})
	if envLib == nil {
		t.Fatal("environment setup failed")
	}
	return envLib, envDS
}

func smallOptions() Options {
	o := DefaultOptions()
	o.MaxGraphSeeds = 1200
	o.GraphDevNodes = 500
	o.Graph.MaxCandidates = 120
	o.Model = model.Config{Epochs: 5, LearningRate: 0.02, Seed: 5}
	return o
}

func runPipeline(t *testing.T, opts Options) (*Pipeline, *Result) {
	t.Helper()
	lib, ds := testEnv(t)
	p, err := NewPipeline(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	_, ds := testEnv(t)
	p, res := runPipeline(t, smallOptions())

	if res.Report.LFCount == 0 {
		t.Fatal("pipeline generated no LFs")
	}
	if res.Report.WSCoverage == 0 {
		t.Fatal("weak supervision covered nothing")
	}
	baseRate := metrics.BaseRate(synth.Labels(ds.UnlabeledImage))
	if res.Report.WSPrecision < 2*baseRate {
		t.Errorf("WS precision %.3f below 2x base rate %.3f", res.Report.WSPrecision, baseRate)
	}
	auprc, err := p.EvaluateAUPRC(context.Background(), res.Predictor, ds.TestImage)
	if err != nil {
		t.Fatal(err)
	}
	base := metrics.BaseRate(synth.Labels(ds.TestImage))
	if auprc < 3*base {
		t.Errorf("cross-modal AUPRC %.3f should clearly beat base rate %.3f", auprc, base)
	}
	for _, stage := range []string{"featurize", "lf-generation", "lf-apply", "label-propagation", "label-model", "train"} {
		if _, ok := res.Report.Timings[stage]; !ok {
			t.Errorf("missing timing for stage %q", stage)
		}
	}
}

func TestPipelineLabelPropImprovesRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	without := smallOptions()
	without.UseLabelProp = false
	_, resNo := runPipeline(t, without)
	_, resYes := runPipeline(t, smallOptions())
	if resYes.Report.WSRecall < resNo.Report.WSRecall {
		t.Errorf("label propagation reduced WS recall: %.4f -> %.4f",
			resNo.Report.WSRecall, resYes.Report.WSRecall)
	}
	if resYes.Report.LFCount != resNo.Report.LFCount+1 {
		t.Errorf("labelprop LF not appended: %d vs %d", resYes.Report.LFCount, resNo.Report.LFCount)
	}
}

func TestPipelineMajorityVoteFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := smallOptions()
	opts.UseGenerative = false
	_, res := runPipeline(t, opts)
	if res.Report.LabelModel != nil {
		t.Error("majority-vote run should not fit a generative model")
	}
	if res.Report.WSCoverage == 0 {
		t.Error("majority vote produced no coverage")
	}
}

func TestPipelineCrossModalBeatsTextOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ctx := context.Background()
	_, ds := testEnv(t)

	textOnly := smallOptions()
	textOnly.UseImage = false
	pText, resText := runPipeline(t, textOnly)
	aucText, err := pText.EvaluateAUPRC(ctx, resText.Predictor, ds.TestImage)
	if err != nil {
		t.Fatal(err)
	}
	pBoth, resBoth := runPipeline(t, smallOptions())
	aucBoth, err := pBoth.EvaluateAUPRC(ctx, resBoth.Predictor, ds.TestImage)
	if err != nil {
		t.Fatal(err)
	}
	// Paper finding 3/4 (§6.6): joint training beats text-only inference
	// on the new modality.
	if aucBoth <= aucText {
		t.Errorf("cross-modal AUPRC %.3f should beat text-only %.3f", aucBoth, aucText)
	}
}

func TestPipelineOptionValidation(t *testing.T) {
	lib, _ := testEnv(t)
	bad := []Options{
		{UseText: false, UseImage: false},
		{UseText: true, UseImage: true, Fusion: "bogus"},
		{UseText: true, UseImage: true, LFSource: "bogus"},
		{UseText: true, UseImage: false, Fusion: DeViSE},
	}
	for i, o := range bad {
		if _, err := NewPipeline(lib, o); err == nil {
			t.Errorf("options %d should be rejected", i)
		}
	}
	if _, err := NewPipeline(nil, DefaultOptions()); err == nil {
		t.Error("nil library should be rejected")
	}
}

func TestEndSchemaRespectsServability(t *testing.T) {
	lib, _ := testEnv(t)
	p, err := NewPipeline(lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	schema := p.EndSchema()
	if _, ok := schema.Index("user_reports"); ok {
		t.Error("nonservable feature leaked into the end-model schema")
	}
	if _, ok := schema.Index("img_embedding"); !ok {
		t.Error("modality features missing from default end schema")
	}
	noMod := DefaultOptions()
	noMod.IncludeModalityFeatures = false
	p2, _ := NewPipeline(lib, noMod)
	if _, ok := p2.EndSchema().Index("img_embedding"); ok {
		t.Error("modality features present despite IncludeModalityFeatures=false")
	}
}

func TestSupervisedCurveMonotoneTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lib, ds := testEnv(t)
	p, err := NewPipeline(lib, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	schema := p.SchemaFor(resource.ABCD, true, false)
	curve, err := p.SupervisedCurve(ctx, ds.HandLabelPool, ds.TestImage,
		[]int{100, 2500, 999999}, schema, model.Config{Epochs: 5, Seed: 3, LearningRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve has %d points, want 2 (oversized budget skipped)", len(curve))
	}
	if curve[1].AUPRC <= curve[0].AUPRC {
		t.Errorf("more hand labels should help: %.3f @%d vs %.3f @%d",
			curve[0].AUPRC, curve[0].Budget, curve[1].AUPRC, curve[1].Budget)
	}
}

func TestCrossOver(t *testing.T) {
	curve := []BudgetPoint{{100, 0.3}, {500, 0.5}, {1000, 0.7}}
	if got := CrossOver(curve, 0.45); got != 500 {
		t.Errorf("CrossOver = %d, want 500", got)
	}
	if got := CrossOver(curve, 0.9); got != 0 {
		t.Errorf("unreachable CrossOver = %d, want 0", got)
	}
}

func TestEmbeddingOnlySchema(t *testing.T) {
	lib, _ := testEnv(t)
	p, _ := NewPipeline(lib, DefaultOptions())
	s := p.EmbeddingOnlySchema()
	if s.Len() != 1 {
		t.Fatalf("embedding schema has %d features, want 1", s.Len())
	}
	if _, ok := s.Index("img_embedding"); !ok {
		t.Error("embedding schema missing img_embedding")
	}
}

func TestTuneModel(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	_, res := runPipeline(t, smallOptions())
	lib, _ := testEnv(t)
	p, err := NewPipeline(lib, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := p.TuneModel(context.Background(), res.Curation, p.DefaultTrainSpec(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuned.Trials) != 4 {
		t.Fatalf("trials = %d, want 4", len(tuned.Trials))
	}
	if tuned.Score <= 0 {
		t.Errorf("tuned validation score = %v", tuned.Score)
	}
	for _, tr := range tuned.Trials {
		if tr.Score > tuned.Score {
			t.Errorf("best score %.3f below trial %.3f", tuned.Score, tr.Score)
		}
	}
	// The tuned config must be usable for a final fit.
	spec := p.DefaultTrainSpec()
	spec.Model = tuned.Config
	if _, err := p.Train(context.Background(), res.Curation, spec); err != nil {
		t.Fatalf("final fit with tuned config: %v", err)
	}
}

func TestTuneModelValidation(t *testing.T) {
	lib, _ := testEnv(t)
	p, err := NewPipeline(lib, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	tiny := &Curation{}
	if _, err := p.TuneModel(context.Background(), tiny, p.DefaultTrainSpec(), 2, 1); err == nil {
		t.Error("expected error for tiny curation")
	}
}

func TestTrainSpecVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	_, res := runPipeline(t, smallOptions())
	lib, ds := testEnv(t)
	p, err := NewPipeline(lib, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	testVecs, err := p.Featurize(ctx, ds.TestImage)
	if err != nil {
		t.Fatal(err)
	}
	labels := synth.Labels(ds.TestImage)

	// Schema override: an embedding-only model must ignore everything else.
	spec := p.DefaultTrainSpec()
	spec.Schema = p.EmbeddingOnlySchema()
	embOnly, err := p.Train(context.Background(), res.Curation, spec)
	if err != nil {
		t.Fatal(err)
	}
	if auc := metrics.AUPRC(labels, embOnly.PredictBatch(testVecs)); auc <= 0 {
		t.Errorf("embedding-only AUPRC = %v", auc)
	}

	// No modality is an error.
	bad := p.DefaultTrainSpec()
	bad.UseText, bad.UseImage = false, false
	if _, err := p.Train(context.Background(), res.Curation, bad); err == nil {
		t.Error("expected error for no-modality spec")
	}

	// DeViSE without both modalities is an error.
	devise := p.DefaultTrainSpec()
	devise.Fusion = DeViSE
	devise.UseText = false
	if _, err := p.Train(context.Background(), res.Curation, devise); err == nil {
		t.Error("expected error for single-modality DeViSE")
	}

	// Extra corpora join training and shift predictions.
	extraSpec := p.DefaultTrainSpec()
	plain, err := p.Train(context.Background(), res.Curation, extraSpec)
	if err != nil {
		t.Fatal(err)
	}
	extraVecs, err := p.Featurize(ctx, ds.HandLabelPool[:200])
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]float64, len(extraVecs))
	weights := make([]float64, len(extraVecs))
	for i, pt := range ds.HandLabelPool[:200] {
		if pt.Label > 0 {
			targets[i] = 1
		}
		weights[i] = 5
	}
	extraSpec.Extra = []fusion.Corpus{{Name: "extra", Vectors: extraVecs, Targets: targets, Weights: weights}}
	boosted, err := p.Train(context.Background(), res.Curation, extraSpec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 20; i++ {
		if plain.Predict(testVecs[i]) != boosted.Predict(testVecs[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("extra corpus had no effect on the trained model")
	}
}

func TestCurationSkipsWSWithoutImage(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lib, ds := testEnv(t)
	opts := smallOptions()
	opts.UseImage = false
	p, err := NewPipeline(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.Curate(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Report.LFCount != 0 || cur.Report.WSCoverage != 0 {
		t.Error("text-only curation should skip weak supervision")
	}
	if _, ok := cur.Report.Timings["lf-generation"]; ok {
		t.Error("text-only curation should not run LF generation")
	}
}
