package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/featurestore/disk"
	"crossmodal/internal/labelprop"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/metrics"
	"crossmodal/internal/mining"
	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

// StreamOptions configures the disk-backed streaming curation path
// (Pipeline.CurateStreamed): generation, featurization, LF mining,
// propagation, and denoising run in fixed-size chunks that spill to a
// sharded feature store, so memory stays bounded by the chunk size and the
// graph window instead of the corpus size.
type StreamOptions struct {
	// Dir is the feature-store root; the text and image corpora land in
	// Dir/text and Dir/image. Required.
	Dir string
	// ChunkSize bounds how many points are resident per pipeline stage
	// (default 4096).
	ChunkSize int
	// Shards is the per-store shard count (0: the store's default).
	Shards int
	// Resume reopens existing stores and skips re-featurizing chunks that
	// already committed: generation is replayed from the seed (cheap, and
	// it keeps the RNG stream and the label arrays aligned) while the
	// expensive featurize+spill step is skipped for the committed prefix.
	// Without Resume, CurateStreamed refuses non-empty stores.
	Resume bool
	// GraphWindow caps how many unlabeled-corpus rows join the propagation
	// graph, whose nodes are memory-resident. 0 means all rows — required
	// for bit-identity with the in-memory pipeline; rows past the window
	// get no propagation vote (the score LF abstains on them).
	GraphWindow int
	// TrainCap bounds the per-corpus rows Materialize loads back into
	// memory for end-model training (0 = all).
	TrainCap int
	// SkipCRC and CommitHook pass through to the disk stores (see
	// disk.Options); CommitHook is the crash-injection seam.
	SkipCRC    bool
	CommitHook func(op, path string) error
	// ChunkHook, when non-nil, runs after every chunk-granular step with a
	// stage tag and the chunk sequence number; an error aborts the run.
	// Tests use it for crash injection and memory-ceiling probes.
	ChunkHook func(stage string, chunk int) error
	// WarmPropagate re-propagates after every graph delta, warm-started
	// from the previous scores (labelprop.PropagateWarm), yielding
	// intermediate label estimates as the corpus streams in. Final scores
	// then agree with a cold run only to within Prop.Tol, so this is off
	// in bit-identity mode.
	WarmPropagate bool
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 4096
	}
	return o
}

// StreamedCuration is the streaming analogue of Curation: probabilistic
// labels plus open disk stores instead of materialized vector slices.
type StreamedCuration struct {
	// Text and Image are the open stores holding the featurized corpora in
	// generation order.
	Text, Image *disk.Store
	// TextLabels are the labeled-corpus labels in row order.
	TextLabels []int8
	// ImageTruth is the unlabeled corpus's hidden ground truth (also the
	// image store's label column), read only for the Report's WS quality
	// diagnostics — curation never trains on it.
	ImageTruth []int8
	// Pool and Test are the hand-label pool and test corpora; they are
	// small by construction and stay in memory.
	Pool, Test []*synth.Point
	// ProbLabels, Covered and Report mirror Curation.
	ProbLabels []float64
	Covered    []bool
	Report     Report
	// ReusedChunks counts store chunks whose featurization was skipped on a
	// Resume run because they had already committed; 0 on a cold run.
	ReusedChunks int

	task *synth.Task
	opts StreamOptions
}

// Close closes both stores.
func (sc *StreamedCuration) Close() error {
	err := sc.Text.Close()
	if e := sc.Image.Close(); err == nil {
		err = e
	}
	return err
}

// Materialize loads the curated corpora back into memory as a Curation for
// end-model training, bounded by StreamOptions.TrainCap rows per corpus.
// Vectors round-trip the store bit-exactly, so training on a materialized
// curation matches training on the in-memory pipeline's output.
func (sc *StreamedCuration) Materialize(ctx context.Context) (*Curation, error) {
	textVecs, err := loadVecs(ctx, sc.Text, sc.opts.TrainCap)
	if err != nil {
		return nil, fmt.Errorf("core: materialize text: %w", err)
	}
	imageVecs, err := loadVecs(ctx, sc.Image, sc.opts.TrainCap)
	if err != nil {
		return nil, fmt.Errorf("core: materialize image: %w", err)
	}
	return &Curation{
		Dataset:    &synth.Dataset{Task: sc.task, HandLabelPool: sc.Pool, TestImage: sc.Test},
		TextVecs:   textVecs,
		ImageVecs:  imageVecs,
		TextLabels: sc.TextLabels[:len(textVecs)],
		ProbLabels: sc.ProbLabels[:len(imageVecs)],
		Covered:    sc.Covered[:len(imageVecs)],
		Report:     sc.Report,
	}, nil
}

// errStopScan aborts a store scan early once enough rows were consumed.
var errStopScan = errors.New("core: stop scan")

func loadVecs(ctx context.Context, store *disk.Store, limit int) ([]*feature.Vector, error) {
	n := store.Rows()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]*feature.Vector, 0, n)
	err := store.ScanChunks(ctx, func(_ int, _ []int, _ []int8, vecs []*feature.Vector) error {
		if take := n - len(out); take < len(vecs) {
			vecs = vecs[:take]
		}
		out = append(out, vecs...)
		if len(out) >= n {
			return errStopScan
		}
		return nil
	})
	if errors.Is(err, errStopScan) {
		err = nil
	}
	return out, err
}

// CurateStreamed is Curate over a generated-on-the-fly dataset with
// bounded memory: points are generated, featurized, and spilled to disk
// stores chunk by chunk; LF mining streams over the store; the propagation
// graph grows by incremental deltas. With GraphWindow 0 and WarmPropagate
// off the result is bit-identical to BuildDataset + Curate at the same
// configuration (TestGoldenPipelineStreamed pins this).
func (p *Pipeline) CurateStreamed(ctx context.Context, w *synth.World, task *synth.Task, dsCfg synth.DatasetConfig, sopts StreamOptions) (*StreamedCuration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sopts = sopts.withDefaults()
	if sopts.Dir == "" {
		return nil, fmt.Errorf("core: StreamOptions.Dir is required")
	}
	if p.opts.LFSource == ExpertLFs {
		return nil, fmt.Errorf("core: streamed curation supports mined LFs only")
	}
	ctx, span := trace.Start(ctx, "pipeline.curate_streamed")
	defer span.End()

	stream, err := synth.NewStream(w, task, dsCfg)
	if err != nil {
		return nil, err
	}
	dopts := disk.Options{Shards: sopts.Shards, SkipCRC: sopts.SkipCRC, CommitHook: sopts.CommitHook}
	schema := p.lib.Schema()
	text, err := disk.Open(filepath.Join(sopts.Dir, "text"), schema, dopts)
	if err != nil {
		return nil, fmt.Errorf("core: open text store: %w", err)
	}
	image, err := disk.Open(filepath.Join(sopts.Dir, "image"), schema, dopts)
	if err != nil {
		text.Close()
		return nil, fmt.Errorf("core: open image store: %w", err)
	}
	r := &streamRun{p: p, opts: sopts, text: text, image: image, task: task}
	sc, err := r.run(ctx, stream)
	if err != nil {
		text.Close()
		image.Close()
		return nil, err
	}
	return sc, nil
}

// streamRun carries one CurateStreamed execution's state.
type streamRun struct {
	p           *Pipeline
	opts        StreamOptions
	task        *synth.Task
	text, image *disk.Store
	textLabels  []int8
	imageTruth  []int8
	pool, test  []*synth.Point
	reused      int
}

func (r *streamRun) hook(stage string, chunk int) error {
	if r.opts.ChunkHook == nil {
		return nil
	}
	if err := r.opts.ChunkHook(stage, chunk); err != nil {
		return fmt.Errorf("core: chunk hook at %s[%d]: %w", stage, chunk, err)
	}
	return nil
}

func (r *streamRun) run(ctx context.Context, stream *synth.Stream) (*StreamedCuration, error) {
	timings := make(map[string]time.Duration)
	stage := func(name string, start time.Time) { timings[name] = time.Since(start) }

	start := time.Now()
	if err := r.ingest(ctx, stream); err != nil {
		return nil, err
	}
	stage("ingest", start)

	report := Report{Task: r.task.Name, Timings: timings}
	sc := &StreamedCuration{
		Text:         r.text,
		Image:        r.image,
		TextLabels:   r.textLabels,
		ImageTruth:   r.imageTruth,
		Pool:         r.pool,
		Test:         r.test,
		ReusedChunks: r.reused,
		task:         r.task,
		opts:         r.opts,
	}
	nImages := r.image.Rows()
	if !r.p.opts.UseImage {
		sc.ProbLabels = make([]float64, nImages)
		sc.Covered = make([]bool, nImages)
		sc.Report = report
		return sc, nil
	}

	lfSchema := r.p.lfSchema()
	mrCfg := mapreduce.Config{Workers: r.p.opts.Workers}

	start = time.Now()
	corpus := &storeCorpus{store: r.text, schema: lfSchema, onChunk: func(seq int) error { return r.hook("mine", seq) }}
	lfs, miningReport, err := mining.MineStream(ctx, mrCfg, r.p.opts.Mining, corpus)
	if err != nil {
		return nil, fmt.Errorf("core: mine LFs: %w", err)
	}
	stage("lf-generation", start)

	start = time.Now()
	applyCtx, applySpan := trace.Start(ctx, "lf.apply")
	devMatrix, err := r.applyChunked(applyCtx, mrCfg, lfs, r.text, lfSchema, "lf-apply:text")
	if err != nil {
		applySpan.End()
		return nil, fmt.Errorf("core: apply LFs to dev: %w", err)
	}
	mined := len(lfs)
	if !r.p.opts.DisableLFDedup {
		lfs, devMatrix = dedupeLFs(lfs, devMatrix, r.textLabels)
	}
	applySpan.Add("lfs_kept", int64(len(lfs)))
	applySpan.Add("lfs_rejected", int64(mined-len(lfs)))
	matrix, err := r.applyChunked(applyCtx, mrCfg, lfs, r.image, lfSchema, "lf-apply:image")
	applySpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: apply LFs: %w", err)
	}
	stage("lf-apply", start)

	report.Mining = miningReport
	report.DevStats = lf.EvaluateAll(devMatrix, r.textLabels)

	if r.p.opts.UseLabelProp {
		start = time.Now()
		lpCtx, lpSpan := trace.Start(ctx, "labelprop")
		cuts, iters, err := r.propagateStreamed(lpCtx, matrix, devMatrix)
		lpSpan.End()
		if err != nil {
			return nil, err
		}
		report.Cuts, report.PropIters = cuts, iters
		stage("label-propagation", start)
	}
	report.LFCount = matrix.NumLFs()

	start = time.Now()
	lmCtx, lmSpan := trace.Start(ctx, "labelmodel")
	probs, covered, lm, err := r.p.denoise(lmCtx, matrix, devMatrix, r.textLabels)
	lmSpan.End()
	if err != nil {
		return nil, err
	}
	report.LabelModel = lm
	stage("label-model", start)
	report.WSCoverage = coverageRate(covered)
	report.WSPrecision, report.WSRecall, report.WSF1 = wsQualityLabels(probs, covered, r.imageTruth, metrics.BaseRate(r.textLabels))

	sc.ProbLabels, sc.Covered, sc.Report = probs, covered, report
	return sc, nil
}

// ingest drains the generator: text and image chunks are featurized and
// spilled to their stores, pool and test points (small by construction)
// are kept in memory. With Resume, chunks already committed to a store are
// not re-featurized — generation replays deterministically, so labels and
// row order still line up with the stored prefix.
func (r *streamRun) ingest(ctx context.Context, stream *synth.Stream) error {
	ctx, span := trace.Start(ctx, "stream.ingest")
	defer span.End()
	if !r.opts.Resume && (r.text.Chunks() > 0 || r.image.Chunks() > 0) {
		return fmt.Errorf("core: store at %s already has data; set StreamOptions.Resume or start from an empty directory", r.opts.Dir)
	}
	textSkip, imageSkip := 0, 0
	if r.opts.Resume {
		textSkip, imageSkip = r.text.Chunks(), r.image.Chunks()
	}
	textChunks, imageChunks := 0, 0
	for {
		ch := stream.Next(r.opts.ChunkSize)
		if ch == nil {
			break
		}
		switch ch.Corpus {
		case synth.TextCorpus:
			// Text row index must equal point ID: propagation addresses
			// seed rows in the store by Find(ID).
			for i, pt := range ch.Points {
				if pt.ID != ch.Start+i {
					return fmt.Errorf("core: text point ID %d at corpus offset %d", pt.ID, ch.Start+i)
				}
			}
			labels := synth.Labels(ch.Points)
			r.textLabels = append(r.textLabels, labels...)
			if err := r.spill(ctx, r.text, ch, labels, textChunks, textSkip); err != nil {
				return err
			}
			if err := r.hook("ingest:text", textChunks); err != nil {
				return err
			}
			textChunks++
		case synth.ImageCorpus:
			truth := synth.Labels(ch.Points)
			r.imageTruth = append(r.imageTruth, truth...)
			if err := r.spill(ctx, r.image, ch, truth, imageChunks, imageSkip); err != nil {
				return err
			}
			if err := r.hook("ingest:image", imageChunks); err != nil {
				return err
			}
			imageChunks++
		case synth.PoolCorpus:
			r.pool = append(r.pool, ch.Points...)
		case synth.TestCorpus:
			r.test = append(r.test, ch.Points...)
		}
	}
	if r.text.Rows() != len(r.textLabels) || r.image.Rows() != len(r.imageTruth) {
		return fmt.Errorf("core: store rows (%d text, %d image) disagree with generated corpus (%d, %d); was the store written with a different dataset config?",
			r.text.Rows(), r.image.Rows(), len(r.textLabels), len(r.imageTruth))
	}
	span.SetInt("text_rows", int64(len(r.textLabels)))
	span.SetInt("image_rows", int64(len(r.imageTruth)))
	span.SetInt("chunks_reused", int64(r.reused))
	return nil
}

func (r *streamRun) spill(ctx context.Context, store *disk.Store, ch *synth.Chunk, labels []int8, seq, skip int) error {
	if seq < skip {
		if got := store.ChunkRows(seq); got != len(ch.Points) {
			return fmt.Errorf("core: resume mismatch: store chunk %d has %d rows, generator produced %d (different ChunkSize or dataset config?)", seq, got, len(ch.Points))
		}
		r.reused++
		return nil
	}
	vecs, err := r.p.Featurize(ctx, ch.Points)
	if err != nil {
		return fmt.Errorf("core: featurize chunk: %w", err)
	}
	ids := make([]int, len(ch.Points))
	for i, pt := range ch.Points {
		ids[i] = pt.ID
	}
	if err := store.AppendChunk(ctx, ids, labels, vecs); err != nil {
		return fmt.Errorf("core: spill chunk: %w", err)
	}
	return nil
}

// applyChunked applies LFs to a store's rows chunk by chunk, concatenating
// the per-chunk vote matrices — identical to one lf.Apply over the whole
// corpus because votes are per-point.
func (r *streamRun) applyChunked(ctx context.Context, mrCfg mapreduce.Config, lfs []*lf.LF, store *disk.Store, schema *feature.Schema, stage string) (*lf.Matrix, error) {
	var matrix *lf.Matrix
	err := store.ScanChunks(ctx, func(seq int, _ []int, _ []int8, vecs []*feature.Vector) error {
		m, err := lf.Apply(ctx, mrCfg, lfs, reprojectAll(vecs, schema))
		if err != nil {
			return err
		}
		if matrix == nil {
			matrix = m
		} else {
			matrix.Votes = append(matrix.Votes, m.Votes...)
		}
		return r.hook(stage, seq)
	})
	return matrix, err
}

// scanWindow replays the first window image rows in append order,
// reprojected into schema.
func (r *streamRun) scanWindow(ctx context.Context, schema *feature.Schema, window int, stage string, fn func([]*feature.Vector) error) error {
	if window == 0 {
		return nil
	}
	seen := 0
	err := r.image.ScanChunks(ctx, func(seq int, _ []int, _ []int8, vecs []*feature.Vector) error {
		if take := window - seen; take < len(vecs) {
			vecs = vecs[:take]
		}
		seen += len(vecs)
		if err := fn(reprojectAll(vecs, schema)); err != nil {
			return err
		}
		if err := r.hook(stage, seq); err != nil {
			return err
		}
		if seen >= window {
			return errStopScan
		}
		return nil
	})
	if errors.Is(err, errStopScan) {
		return nil
	}
	return err
}

// propagateStreamed is the streaming propagate: seed and dev text nodes are
// fetched from the store by ID (they are bounded by MaxGraphSeeds and
// GraphDevNodes), scales are fitted with the chunked accumulator, and the
// graph grows by one labelprop.Builder delta per image chunk instead of a
// monolithic build. Node assembly order — seeds, dev, images — matches the
// in-memory path exactly, and the Builder's delta property makes the chunked
// graph bit-identical to BuildGraph, so a cold final propagation reproduces
// the in-memory scores bit for bit.
func (r *streamRun) propagateStreamed(ctx context.Context, matrix, devMatrix *lf.Matrix) (labelprop.Cuts, int, error) {
	p := r.p
	gSchema := p.graphSchema()
	nText, nImages := r.text.Rows(), r.image.Rows()
	seedIdx, devIdx, err := p.graphSplit(nText)
	if err != nil {
		return labelprop.Cuts{}, 0, err
	}
	window := r.opts.GraphWindow
	if window <= 0 || window > nImages {
		window = nImages
	}

	need := make([]int, 0, len(seedIdx)+len(devIdx))
	need = append(need, seedIdx...)
	need = append(need, devIdx...)
	found, err := r.text.Find(ctx, need)
	if err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: fetch graph seeds: %w", err)
	}
	fetch := func(idx []int) ([]*feature.Vector, error) {
		out := make([]*feature.Vector, len(idx))
		for i, ti := range idx {
			v, ok := found[ti]
			if !ok {
				return nil, fmt.Errorf("core: text row %d missing from store", ti)
			}
			out[i] = v.Reproject(gSchema)
		}
		return out, nil
	}
	seedNodes, err := fetch(seedIdx)
	if err != nil {
		return labelprop.Cuts{}, 0, err
	}
	devNodes, err := fetch(devIdx)
	if err != nil {
		return labelprop.Cuts{}, 0, err
	}

	seeds := make(map[int]float64, len(seedIdx))
	var posSeeds float64
	for i, ti := range seedIdx {
		if r.textLabels[ti] > 0 {
			seeds[i] = 1
			posSeeds++
		} else {
			seeds[i] = 0
		}
	}

	// Scales over the full node list in node order: the chunked accumulator
	// is bit-identical to feature.FitScales over the assembled nodes.
	acc := feature.NewScalesAccum(gSchema)
	acc.AddMeans(seedNodes)
	acc.AddMeans(devNodes)
	if err := r.scanWindow(ctx, gSchema, window, "scales:means", func(proj []*feature.Vector) error {
		acc.AddMeans(proj)
		return nil
	}); err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: fit scales: %w", err)
	}
	acc.FinishMeans()
	acc.AddDevs(seedNodes)
	acc.AddDevs(devNodes)
	if err := r.scanWindow(ctx, gSchema, window, "scales:devs", func(proj []*feature.Vector) error {
		acc.AddDevs(proj)
		return nil
	}); err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: fit scales: %w", err)
	}
	scales := acc.Scales()

	gcfg := p.opts.Graph
	gcfg.Seed = p.opts.Seed ^ 0x6a7f
	gcfg.Workers = p.opts.Workers
	if gcfg.Weights == nil && !p.opts.UniformGraphWeights {
		seedLabels := make([]int8, len(seedIdx))
		for i, ti := range seedIdx {
			seedLabels[i] = r.textLabels[ti]
		}
		if weights, werr := FitGraphWeights(seedNodes, seedLabels, scales, 20000, p.opts.Seed^0x77); werr == nil {
			gcfg.Weights = weights
		}
	}

	b, err := labelprop.NewBuilder(gSchema, gcfg, scales)
	if err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: build graph: %w", err)
	}
	textNodes := make([]*feature.Vector, 0, len(seedNodes)+len(devNodes))
	textNodes = append(textNodes, seedNodes...)
	textNodes = append(textNodes, devNodes...)
	if err := b.ApplyDelta(ctx, textNodes); err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: build graph: %w", err)
	}

	pcfg := p.opts.Prop
	pcfg.Prior = posSeeds / float64(len(seedIdx))
	var res *labelprop.Result
	err = r.scanWindow(ctx, gSchema, window, "graph", func(proj []*feature.Vector) error {
		if err := b.ApplyDelta(ctx, proj); err != nil {
			return err
		}
		if r.opts.WarmPropagate {
			var prev []float64
			if res != nil {
				prev = res.Scores
			}
			warm, werr := labelprop.PropagateWarm(ctx, b.Graph(), seeds, pcfg, prev)
			if werr != nil {
				return werr
			}
			res = warm
		}
		return nil
	})
	if err != nil {
		return labelprop.Cuts{}, 0, fmt.Errorf("core: build graph: %w", err)
	}
	if res == nil {
		res, err = labelprop.Propagate(ctx, b.Graph(), seeds, pcfg)
		if err != nil {
			return labelprop.Cuts{}, 0, fmt.Errorf("core: propagate: %w", err)
		}
	}

	devStart := len(seedNodes)
	imageStart := devStart + len(devNodes)
	devScores := res.Scores[devStart:imageStart]
	devLabels := make([]int8, len(devIdx))
	for i, ti := range devIdx {
		devLabels[i] = r.textLabels[ti]
	}
	cuts, err := p.tunePropCuts(devScores, devLabels, posSeeds/float64(len(seedIdx)), res.Scores[imageStart:])
	if err != nil {
		return labelprop.Cuts{}, 0, err
	}

	// Rows past the graph window abstain (zero-valued Present).
	imageScores := make([]float64, nImages)
	imagePresent := make([]bool, nImages)
	copy(imageScores, res.Scores[imageStart:])
	copy(imagePresent, res.Reached[imageStart:])
	if err := appendPropLF(matrix, devMatrix, cuts, imageScores, imagePresent,
		devIdx, devScores, res.Reached[devStart:imageStart]); err != nil {
		return labelprop.Cuts{}, 0, err
	}
	return cuts, res.Iters, nil
}

// storeCorpus adapts a disk store to mining.Corpus, reprojecting each chunk
// into the LF feature space.
type storeCorpus struct {
	store   *disk.Store
	schema  *feature.Schema
	onChunk func(seq int) error
}

func (c *storeCorpus) Schema() *feature.Schema { return c.schema }

func (c *storeCorpus) Scan(ctx context.Context, fn func([]*feature.Vector, []int8) error) error {
	return c.store.ScanChunks(ctx, func(seq int, _ []int, labels []int8, vecs []*feature.Vector) error {
		if err := fn(reprojectAll(vecs, c.schema), labels); err != nil {
			return err
		}
		if c.onChunk != nil {
			return c.onChunk(seq)
		}
		return nil
	})
}
