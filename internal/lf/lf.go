// Package lf defines labeling functions (LFs): programmatic, noisy labelers
// that vote positive, negative, or abstain on a data point's common-feature
// representation (paper §4.1). LFs are the unit of weak supervision; they
// are evaluated against a labeled development set of the *old* modality and
// applied at scale to the unlabeled new modality.
package lf

import (
	"context"
	"fmt"
	"strings"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
)

// Vote values returned by labeling functions.
const (
	Positive int8 = 1
	Negative int8 = -1
	Abstain  int8 = 0
)

// LF is one labeling function. Func must be safe for concurrent use.
type LF struct {
	// Name uniquely identifies the LF in reports.
	Name string
	// Source records how the LF was created: "mined", "expert",
	// "labelprop", or "manual".
	Source string
	// Func votes on a feature vector.
	Func func(*feature.Vector) int8
}

// Apply returns the LF's vote on v.
func (l *LF) Apply(v *feature.Vector) int8 { return l.Func(v) }

// String returns the LF's name and source.
func (l *LF) String() string { return fmt.Sprintf("%s(%s)", l.Name, l.Source) }

// CategoryLF votes vote when the named categorical feature contains
// category, and abstains otherwise (including when the feature is missing).
func CategoryLF(featName, category string, vote int8, source string) *LF {
	return &LF{
		Name:   fmt.Sprintf("%s=%s→%+d", featName, category, vote),
		Source: source,
		Func: func(v *feature.Vector) int8 {
			if v.Get(featName).HasCategory(category) {
				return vote
			}
			return Abstain
		},
	}
}

// ConjunctionLF votes vote when every (feature, category) predicate holds,
// and abstains otherwise. Predicates are given as "feat=cat" terms.
func ConjunctionLF(terms []string, vote int8, source string) (*LF, error) {
	type pred struct{ feat, cat string }
	preds := make([]pred, len(terms))
	for i, t := range terms {
		parts := strings.SplitN(t, "=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("lf: bad conjunction term %q (want feat=cat)", t)
		}
		preds[i] = pred{parts[0], parts[1]}
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("lf: empty conjunction")
	}
	return &LF{
		Name:   fmt.Sprintf("%s→%+d", strings.Join(terms, "∧"), vote),
		Source: source,
		Func: func(v *feature.Vector) int8 {
			for _, p := range preds {
				if !v.Get(p.feat).HasCategory(p.cat) {
					return Abstain
				}
			}
			return vote
		},
	}, nil
}

// ThresholdLF votes vote when the named numeric feature is present and
// satisfies the comparison (above: value >= cut; otherwise value <= cut).
func ThresholdLF(featName string, cut float64, above bool, vote int8, source string) *LF {
	op := "≥"
	if !above {
		op = "≤"
	}
	return &LF{
		Name:   fmt.Sprintf("%s%s%.3g→%+d", featName, op, cut, vote),
		Source: source,
		Func: func(v *feature.Vector) int8 {
			val := v.Get(featName)
			if val.Missing {
				return Abstain
			}
			if (above && val.Num >= cut) || (!above && val.Num <= cut) {
				return vote
			}
			return Abstain
		},
	}
}

// ScoreLF votes using an externally computed per-point score (e.g. the
// label-propagation output, paper §4.4): score >= posCut votes positive,
// score <= negCut votes negative, otherwise abstain. scores is indexed by
// the same corpus order the LF will be applied in, carried via index.
type ScoreLF struct {
	Name    string
	Source  string
	Scores  []float64
	PosCut  float64
	NegCut  float64
	Present []bool // nil means every score is present
}

// VoteAt returns the score LF's vote for corpus position i.
func (s *ScoreLF) VoteAt(i int) int8 {
	if i < 0 || i >= len(s.Scores) {
		return Abstain
	}
	if s.Present != nil && !s.Present[i] {
		return Abstain
	}
	switch {
	case s.Scores[i] >= s.PosCut:
		return Positive
	case s.Scores[i] <= s.NegCut:
		return Negative
	default:
		return Abstain
	}
}

// Matrix is the n×m label matrix of m LF votes on n data points.
type Matrix struct {
	Votes [][]int8 // Votes[i][j] is LF j's vote on point i
	Names []string
}

// NumPoints returns n.
func (m *Matrix) NumPoints() int { return len(m.Votes) }

// NumLFs returns the number of labeling functions.
func (m *Matrix) NumLFs() int { return len(m.Names) }

// Column extracts LF j's votes over all points.
func (m *Matrix) Column(j int) []int8 {
	out := make([]int8, len(m.Votes))
	for i, row := range m.Votes {
		out[i] = row[j]
	}
	return out
}

// AppendScoreLF adds a score-based LF column to the matrix. The score LF
// must cover exactly the matrix's points.
func (m *Matrix) AppendScoreLF(s *ScoreLF) error {
	if len(s.Scores) != m.NumPoints() {
		return fmt.Errorf("lf: score LF covers %d points, matrix has %d", len(s.Scores), m.NumPoints())
	}
	for i := range m.Votes {
		m.Votes[i] = append(m.Votes[i], s.VoteAt(i))
	}
	m.Names = append(m.Names, s.Name)
	return nil
}

// Apply evaluates every LF on every vector in parallel (the paper applies
// LFs as a MapReduce job) and returns the label matrix.
func Apply(ctx context.Context, cfg mapreduce.Config, lfs []*LF, vecs []*feature.Vector) (*Matrix, error) {
	rows, err := mapreduce.Map(ctx, cfg, vecs, func(v *feature.Vector) ([]int8, error) {
		row := make([]int8, len(lfs))
		for j, l := range lfs {
			row[j] = l.Apply(v)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(lfs))
	for j, l := range lfs {
		names[j] = l.Name
	}
	return &Matrix{Votes: rows, Names: names}, nil
}

// Stats summarizes one LF's behaviour on a labeled development set.
type Stats struct {
	Name      string
	Precision float64 // correct votes / non-abstain votes
	Recall    float64 // correct positive votes / positives (for positive LFs); symmetric for negative LFs
	Coverage  float64 // non-abstain votes / points
	Votes     int
}

// EvaluateColumn computes Stats for one vote column against dev labels.
// Precision counts votes matching the label; recall is class-conditional on
// the voted class (a positive LF's recall is over true positives, a negative
// LF's over true negatives; mixed-vote columns report recall over all points
// whose label matches some vote).
func EvaluateColumn(name string, votes, labels []int8) Stats {
	if len(votes) != len(labels) {
		panic(fmt.Sprintf("lf: %d votes vs %d labels", len(votes), len(labels)))
	}
	var correct, voted int
	classTotals := map[int8]int{}
	classCorrect := map[int8]int{}
	votesClass := map[int8]bool{}
	for i, v := range votes {
		if labels[i] != 0 {
			classTotals[labels[i]]++
		}
		if v == 0 {
			continue
		}
		voted++
		votesClass[v] = true
		if v == labels[i] {
			correct++
			classCorrect[v]++
		}
	}
	s := Stats{Name: name, Votes: voted}
	if voted > 0 {
		s.Precision = float64(correct) / float64(voted)
	}
	var recallDenom, recallNum int
	for class := range votesClass {
		recallDenom += classTotals[class]
		recallNum += classCorrect[class]
	}
	if recallDenom > 0 {
		s.Recall = float64(recallNum) / float64(recallDenom)
	}
	if len(votes) > 0 {
		s.Coverage = float64(voted) / float64(len(votes))
	}
	return s
}

// EvaluateAll computes Stats for every LF column in the matrix.
func EvaluateAll(m *Matrix, labels []int8) []Stats {
	out := make([]Stats, m.NumLFs())
	for j := range out {
		out[j] = EvaluateColumn(m.Names[j], m.Column(j), labels)
	}
	return out
}
