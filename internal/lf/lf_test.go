package lf

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
)

var testSchema = feature.MustSchema(
	feature.Def{Name: "topic", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "objects", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "reports", Kind: feature.Numeric, Set: "D"},
)

func mkVec(t *testing.T, topic string, objects []string, reports float64) *feature.Vector {
	t.Helper()
	v := feature.NewVector(testSchema)
	if topic != "" {
		v.MustSet("topic", feature.CategoricalValue(topic))
	}
	if objects != nil {
		v.MustSet("objects", feature.CategoricalValue(objects...))
	}
	if !math.IsNaN(reports) {
		v.MustSet("reports", feature.NumericValue(reports))
	}
	return v
}

func TestCategoryLF(t *testing.T) {
	l := CategoryLF("topic", "spam", Positive, "manual")
	if got := l.Apply(mkVec(t, "spam", nil, 0)); got != Positive {
		t.Errorf("matching vote = %d", got)
	}
	if got := l.Apply(mkVec(t, "news", nil, 0)); got != Abstain {
		t.Errorf("non-matching vote = %d", got)
	}
	if got := l.Apply(mkVec(t, "", nil, 0)); got != Abstain {
		t.Errorf("missing-feature vote = %d", got)
	}
	if !strings.Contains(l.String(), "manual") {
		t.Errorf("String = %q", l.String())
	}
}

func TestConjunctionLF(t *testing.T) {
	l, err := ConjunctionLF([]string{"topic=spam", "objects=pill"}, Positive, "expert")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Apply(mkVec(t, "spam", []string{"pill", "bottle"}, 0)); got != Positive {
		t.Errorf("both-match vote = %d", got)
	}
	if got := l.Apply(mkVec(t, "spam", []string{"bottle"}, 0)); got != Abstain {
		t.Errorf("partial-match vote = %d", got)
	}
	for _, bad := range [][]string{nil, {"nofield"}, {"=x"}, {"f="}} {
		if _, err := ConjunctionLF(bad, Positive, "x"); err == nil {
			t.Errorf("ConjunctionLF(%v) should fail", bad)
		}
	}
}

func TestThresholdLF(t *testing.T) {
	hi := ThresholdLF("reports", 5, true, Positive, "mined")
	lo := ThresholdLF("reports", 1, false, Negative, "mined")
	if got := hi.Apply(mkVec(t, "", nil, 7)); got != Positive {
		t.Errorf("above vote = %d", got)
	}
	if got := hi.Apply(mkVec(t, "", nil, 3)); got != Abstain {
		t.Errorf("below-cut vote = %d", got)
	}
	if got := lo.Apply(mkVec(t, "", nil, 0.5)); got != Negative {
		t.Errorf("below vote = %d", got)
	}
	missing := feature.NewVector(testSchema)
	if got := hi.Apply(missing); got != Abstain {
		t.Errorf("missing numeric vote = %d", got)
	}
}

func TestScoreLF(t *testing.T) {
	s := &ScoreLF{Scores: []float64{0.9, 0.5, 0.1}, PosCut: 0.8, NegCut: 0.2}
	wants := []int8{Positive, Abstain, Negative}
	for i, w := range wants {
		if got := s.VoteAt(i); got != w {
			t.Errorf("VoteAt(%d) = %d, want %d", i, got, w)
		}
	}
	if got := s.VoteAt(99); got != Abstain {
		t.Errorf("out-of-range vote = %d", got)
	}
	s.Present = []bool{false, true, true}
	if got := s.VoteAt(0); got != Abstain {
		t.Errorf("absent point vote = %d", got)
	}
}

func TestApplyMatrix(t *testing.T) {
	vecs := []*feature.Vector{
		mkVec(t, "spam", nil, 9),
		mkVec(t, "news", nil, 0),
	}
	lfs := []*LF{
		CategoryLF("topic", "spam", Positive, "m"),
		ThresholdLF("reports", 5, true, Positive, "m"),
	}
	m, err := Apply(context.Background(), mapreduce.Config{Workers: 2}, lfs, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPoints() != 2 || m.NumLFs() != 2 {
		t.Fatalf("matrix %dx%d", m.NumPoints(), m.NumLFs())
	}
	if m.Votes[0][0] != Positive || m.Votes[0][1] != Positive {
		t.Errorf("row 0 = %v", m.Votes[0])
	}
	if m.Votes[1][0] != Abstain || m.Votes[1][1] != Abstain {
		t.Errorf("row 1 = %v", m.Votes[1])
	}
	col := m.Column(1)
	if col[0] != Positive || col[1] != Abstain {
		t.Errorf("column 1 = %v", col)
	}
}

func TestAppendScoreLF(t *testing.T) {
	m := &Matrix{Votes: [][]int8{{1}, {0}}, Names: []string{"a"}}
	s := &ScoreLF{Name: "prop", Scores: []float64{0.9, 0.1}, PosCut: 0.8, NegCut: 0.2}
	if err := m.AppendScoreLF(s); err != nil {
		t.Fatal(err)
	}
	if m.NumLFs() != 2 || m.Votes[0][1] != Positive || m.Votes[1][1] != Negative {
		t.Fatalf("matrix after append: %+v", m)
	}
	bad := &ScoreLF{Scores: []float64{1}}
	if err := m.AppendScoreLF(bad); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestEvaluateColumn(t *testing.T) {
	votes := []int8{1, 1, 0, -1, 0, 1}
	labels := []int8{1, -1, 1, -1, -1, 1}
	s := EvaluateColumn("t", votes, labels)
	// voted: 4, correct: 3 (votes 0,3,5)
	if math.Abs(s.Precision-0.75) > 1e-12 {
		t.Errorf("precision = %v", s.Precision)
	}
	// votes classes {+1,-1}: recallDenom = 3 pos + 3 neg, num = 2 + 1
	if math.Abs(s.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %v", s.Recall)
	}
	if math.Abs(s.Coverage-4.0/6) > 1e-12 {
		t.Errorf("coverage = %v", s.Coverage)
	}
}

func TestEvaluateColumnPositiveOnly(t *testing.T) {
	votes := []int8{1, 0, 0, 0}
	labels := []int8{1, 1, -1, -1}
	s := EvaluateColumn("p", votes, labels)
	if s.Precision != 1 {
		t.Errorf("precision = %v", s.Precision)
	}
	if s.Recall != 0.5 { // 1 of 2 positives found; negatives not in denominator
		t.Errorf("recall = %v", s.Recall)
	}
}

func TestEvaluateAll(t *testing.T) {
	m := &Matrix{Votes: [][]int8{{1, 0}, {0, -1}}, Names: []string{"a", "b"}}
	stats := EvaluateAll(m, []int8{1, -1})
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Precision != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestExpertDevelop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var vecs []*feature.Vector
	var labels []int8
	// Topic "bad" is 90% positive; topic "ok" is 95% negative.
	for i := 0; i < 600; i++ {
		if i%3 == 0 {
			lbl := int8(1)
			if rng.Float64() < 0.1 {
				lbl = -1
			}
			vecs = append(vecs, mkVec(t, "bad", []string{"pill"}, 5))
			labels = append(labels, lbl)
		} else {
			lbl := int8(-1)
			if rng.Float64() < 0.05 {
				lbl = 1
			}
			vecs = append(vecs, mkVec(t, "ok", []string{"ball"}, 0))
			labels = append(labels, lbl)
		}
	}
	e := DefaultExpert()
	lfs, err := e.Develop(vecs, labels, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfs) == 0 {
		t.Fatal("expert wrote no LFs")
	}
	m, err := Apply(context.Background(), mapreduce.Config{}, lfs, vecs)
	if err != nil {
		t.Fatal(err)
	}
	foundGood := false
	for _, s := range EvaluateAll(m, labels) {
		if s.Precision > 0.7 && s.Coverage > 0.05 {
			foundGood = true
		}
	}
	if !foundGood {
		t.Error("expert produced no usable LF on an easy task")
	}
}

func TestExpertDevelopErrors(t *testing.T) {
	e := DefaultExpert()
	rng := rand.New(rand.NewSource(1))
	if _, err := e.Develop(nil, nil, rng); err == nil {
		t.Error("expected error on empty dev set")
	}
	if _, err := e.Develop([]*feature.Vector{mkVec(t, "a", nil, 0)}, []int8{1, 1}, rng); err == nil {
		t.Error("expected error on length mismatch")
	}
	// All-negative sample with no patterns: expert finds nothing.
	var vecs []*feature.Vector
	var labels []int8
	for i := 0; i < 50; i++ {
		vecs = append(vecs, feature.NewVector(testSchema))
		labels = append(labels, -1)
	}
	if _, err := e.Develop(vecs, labels, rng); err == nil {
		t.Error("expected error when no viable LFs exist")
	}
}
