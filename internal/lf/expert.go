package lf

import (
	"fmt"
	"math/rand"
	"sort"

	"crossmodal/internal/feature"
)

// Expert simulates a domain expert developing LFs by hand (paper §6.7.1).
// The paper attributes the automatic miner's advantage to corpus coverage:
// "even domain experts are limited to manually examining much smaller data
// volumes". The simulation encodes exactly that asymmetry — the expert
// inspects a small random sample of the development set, estimates which
// feature values look predictive from that sample, and writes category and
// conjunction LFs from those (noisier) estimates.
type Expert struct {
	// SampleSize is how many dev points the expert can examine
	// (hundreds, vs the miner's full corpus).
	SampleSize int
	// MaxLFs caps how many LFs the expert writes.
	MaxLFs int
	// Features restricts which features the expert thinks to look at
	// (experts rarely consider every service); empty means all
	// categorical features.
	Features []string
	// MinPrecision is an absolute floor and MinLift a base-rate multiple:
	// the expert accepts a positive pattern whose sample precision reaches
	// max(MinPrecision, MinLift × sample positive rate), capped at 0.85 —
	// like the miner, experts reason in lift when positives are rare.
	MinPrecision float64
	MinLift      float64
	// MinSupport is the minimum number of sample occurrences before the
	// expert trusts a pattern.
	MinSupport int
	// ConjunctionRate is the probability the expert combines two
	// predicates into a multi-feature conjunction (the paper notes the
	// human LFs were "more complex, multi-feature" rules).
	ConjunctionRate float64
}

// DefaultExpert returns the configuration used in the §6.7.1 comparison.
func DefaultExpert() Expert {
	return Expert{
		SampleSize:   400,
		MaxLFs:       20,
		MinPrecision: 0.05,
		MinLift:      2.5,
		MinSupport:   3,
		// Experts reason over the features they understand semantically
		// (content: topics, objects, keywords, sentiment and the team's
		// own rules) and rarely think to scan other teams' page-content
		// or metadata services — the paper's "engineers often do not
		// possess this expertise" (§4.3).
		Features: []string{
			"topic", "topic_coarse", "objects", "keywords",
			"sentiment", "setting", "kw_spam_rule",
		},
		ConjunctionRate: 0.3,
	}
}

type patternStat struct {
	feat, cat string
	pos, neg  int
}

func (p patternStat) precision(positiveClass bool) float64 {
	total := p.pos + p.neg
	if total == 0 {
		return 0
	}
	if positiveClass {
		return float64(p.pos) / float64(total)
	}
	return float64(p.neg) / float64(total)
}

// Develop writes LFs from a labeled development corpus. The expert inspects
// at most SampleSize random points and proposes positive LFs for
// high-sample-precision feature values (plus occasional conjunctions) and
// negative LFs for values that look strongly negative.
func (e Expert) Develop(vecs []*feature.Vector, labels []int8, rng *rand.Rand) ([]*LF, error) {
	if len(vecs) != len(labels) {
		return nil, fmt.Errorf("lf: %d vectors vs %d labels", len(vecs), len(labels))
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("lf: empty development set")
	}
	sampleSize := e.SampleSize
	if sampleSize <= 0 || sampleSize > len(vecs) {
		sampleSize = len(vecs)
	}
	perm := rng.Perm(len(vecs))[:sampleSize]

	allowed := map[string]bool{}
	for _, f := range e.Features {
		allowed[f] = true
	}
	schema := vecs[0].Schema()

	stats := map[string]*patternStat{}
	var posRate float64
	for _, i := range perm {
		if labels[i] > 0 {
			posRate++
		}
		for fi := 0; fi < schema.Len(); fi++ {
			d := schema.Def(fi)
			if d.Kind != feature.Categorical {
				continue
			}
			if len(allowed) > 0 && !allowed[d.Name] {
				continue
			}
			val := vecs[i].At(fi)
			if val.Missing {
				continue
			}
			for _, c := range val.Categories {
				key := d.Name + "=" + c
				st := stats[key]
				if st == nil {
					st = &patternStat{feat: d.Name, cat: c}
					stats[key] = st
				}
				if labels[i] > 0 {
					st.pos++
				} else {
					st.neg++
				}
			}
		}
	}
	posRate /= float64(sampleSize)

	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var posCands, negCands []*patternStat
	for _, k := range keys {
		st := stats[k]
		if st.pos+st.neg < e.MinSupport {
			continue
		}
		// Experts look for values enriched relative to the base rate.
		posTarget := e.MinPrecision
		if lifted := e.MinLift * posRate; lifted > posTarget {
			posTarget = lifted
		}
		if posTarget > 0.85 {
			posTarget = 0.85
		}
		if st.precision(true) >= posTarget {
			posCands = append(posCands, st)
		}
		if st.precision(false) >= 0.95 && st.pos == 0 && st.neg >= 2*e.MinSupport {
			negCands = append(negCands, st)
		}
	}
	sort.Slice(posCands, func(i, j int) bool {
		pi, pj := posCands[i].precision(true), posCands[j].precision(true)
		if pi != pj {
			return pi > pj
		}
		return posCands[i].feat+posCands[i].cat < posCands[j].feat+posCands[j].cat
	})
	sort.Slice(negCands, func(i, j int) bool {
		if negCands[i].neg != negCands[j].neg {
			return negCands[i].neg > negCands[j].neg
		}
		return negCands[i].feat+negCands[i].cat < negCands[j].feat+negCands[j].cat
	})

	maxLFs := e.MaxLFs
	if maxLFs <= 0 {
		maxLFs = 20
	}
	var lfs []*LF
	for _, st := range posCands {
		if len(lfs) >= maxLFs {
			break
		}
		if len(posCands) > 1 && rng.Float64() < e.ConjunctionRate {
			// Combine with another candidate into a conjunction: more
			// precise, much less coverage.
			other := posCands[rng.Intn(len(posCands))]
			if other != st && other.feat != st.feat {
				conj, err := ConjunctionLF([]string{
					st.feat + "=" + st.cat,
					other.feat + "=" + other.cat,
				}, Positive, "expert")
				if err == nil {
					lfs = append(lfs, conj)
					continue
				}
			}
		}
		lfs = append(lfs, CategoryLF(st.feat, st.cat, Positive, "expert"))
	}
	// Experts add a handful of "obviously benign" negative rules.
	negBudget := maxLFs / 3
	for _, st := range negCands {
		if negBudget == 0 {
			break
		}
		lfs = append(lfs, CategoryLF(st.feat, st.cat, Negative, "expert"))
		negBudget--
	}
	if len(lfs) == 0 {
		return nil, fmt.Errorf("lf: expert found no viable LFs in a sample of %d", sampleSize)
	}
	return lfs, nil
}
