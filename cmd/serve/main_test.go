package main

import (
	"strings"
	"testing"
	"time"
)

// goodConfig mirrors the flag defaults.
func goodConfig() runConfig {
	return runConfig{
		addr: ":8099", fusionKind: "early", taskName: "CT1", scale: 0.1,
		seed: 17, cache: 65536, canaryN: 32, maxBatch: 64,
		maxWait: 2 * time.Millisecond, queue: 1024, timeout: 500 * time.Millisecond,
	}
}

func TestRunConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*runConfig)
		wantErr string // "" means valid
	}{
		{"defaults", func(*runConfig) {}, ""},
		{"train and serve", func(c *runConfig) { c.trainPath = "m.xma" }, ""},
		{"train only", func(c *runConfig) { c.trainPath = "m.xma"; c.trainOnly = true }, ""},
		{"zero canary", func(c *runConfig) { c.canaryN = 0 }, ""},
		{"devise fusion", func(c *runConfig) { c.fusionKind = "devise" }, ""},

		{"train-only without train", func(c *runConfig) { c.trainOnly = true }, "-train-only requires -train"},
		{"empty addr", func(c *runConfig) { c.addr = "" }, "-addr"},
		{"bad fusion", func(c *runConfig) { c.fusionKind = "late" }, "-fusion"},
		{"bad task", func(c *runConfig) { c.taskName = "CT9" }, "-task"},
		{"zero scale", func(c *runConfig) { c.scale = 0 }, "-scale"},
		{"negative scale", func(c *runConfig) { c.scale = -1 }, "-scale"},
		{"negative workers", func(c *runConfig) { c.workers = -1 }, "-workers"},
		{"negative cache", func(c *runConfig) { c.cache = -1 }, "-cache"},
		{"negative canary", func(c *runConfig) { c.canaryN = -1 }, "-canary"},
		{"negative max-batch", func(c *runConfig) { c.maxBatch = -1 }, "-max-batch"},
		{"negative max-wait", func(c *runConfig) { c.maxWait = -time.Millisecond }, "-max-wait"},
		{"negative queue", func(c *runConfig) { c.queue = -1 }, "-queue"},
		{"zero timeout", func(c *runConfig) { c.timeout = 0 }, "-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag (%q)", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsInvalidConfigFast: run() must fail on validation before
// doing any expensive setup.
func TestRunRejectsInvalidConfigFast(t *testing.T) {
	cfg := goodConfig()
	cfg.trainOnly = true // no trainPath
	start := time.Now()
	if err := run(cfg); err == nil {
		t.Fatal("run() accepted -train-only without -train")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("invalid config took %v to reject", elapsed)
	}
}
