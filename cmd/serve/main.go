// Command serve runs the online inference service: it loads (or trains) a
// fusion model and serves predictions over HTTP with micro-batching, atomic
// hot-swap via POST /admin/reload, and bounded-queue load shedding — the
// deployment stage that terminates the paper's adaptation pipeline.
//
// Usage:
//
//	serve [-addr :8099] [-model model.xma] [-train model.xma [-train-only]]
//	      [-fusion early|intermediate|devise] [-task CT1] [-scale 0.1]
//	      [-seed 17] [-workers N] [-cache 65536] [-canary 32]
//	      [-max-batch 64] [-max-wait 2ms] [-queue 1024] [-timeout 500ms]
//
// Typical flows:
//
//	serve -train model.xma -train-only -scale 0.1   # write an artifact
//	serve -model model.xma                          # serve it
//	serve -train model.xma -scale 0.1               # train, save, and serve
//
//	curl -s localhost:8099/predict -d '{"points":[{"id":7}]}'
//	curl -s localhost:8099/admin/reload -d '{"path":"model.xma"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crossmodal/internal/featurestore"
	"crossmodal/internal/fusion"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/serve"
	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		addr       = flag.String("addr", ":8099", "listen address")
		modelPath  = flag.String("model", "", "model artifact to serve at startup")
		trainPath  = flag.String("train", "", "train a model and save the artifact here")
		trainOnly  = flag.Bool("train-only", false, "exit after training (requires -train)")
		fusionKind = flag.String("fusion", "early", "fusion architecture to train: early, intermediate, devise")
		taskName   = flag.String("task", "CT1", "classification task to train on (CT1..CT5)")
		scale      = flag.Float64("scale", 0.1, "training corpus scale factor")
		seed       = flag.Int64("seed", 17, "base seed for request point derivation and training")
		workers    = flag.Int("workers", 0, "worker goroutines per parallel stage (0 = GOMAXPROCS)")
		cache      = flag.Int("cache", 65536, "featurestore capacity (points)")
		canaryN    = flag.Int("canary", 32, "canary batch size validating every hot swap (0 disables)")
		maxBatch   = flag.Int("max-batch", 64, "micro-batch size cap")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "micro-batch window")
		queue      = flag.Int("queue", 1024, "admission queue depth; excess load is shed with 429")
		timeout    = flag.Duration("timeout", 500*time.Millisecond, "per-request scoring budget")
		quant      = flag.String("quant", "f32", "serving precision stamped into trained early-fusion artifacts: off (float64), f32, int8")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON file on shutdown (open in chrome://tracing or ui.perfetto.dev)")
		traceSum   = flag.Bool("trace-summary", false, "print the aggregated stage tree to stderr on shutdown")
	)
	flag.Parse()
	if err := run(runConfig{
		addr: *addr, modelPath: *modelPath, trainPath: *trainPath, trainOnly: *trainOnly,
		fusionKind: *fusionKind, taskName: *taskName, scale: *scale, seed: *seed,
		workers: *workers, cache: *cache, canaryN: *canaryN,
		maxBatch: *maxBatch, maxWait: *maxWait, queue: *queue, timeout: *timeout,
		quant: *quant, pprofAddr: *pprofAddr, tracePath: *tracePath, traceSummary: *traceSum,
	}); err != nil {
		log.Fatal(err)
	}
}

type runConfig struct {
	addr                 string
	modelPath, trainPath string
	trainOnly            bool
	fusionKind, taskName string
	scale                float64
	seed                 int64
	workers, cache       int
	canaryN, maxBatch    int
	maxWait, timeout     time.Duration
	queue                int
	quant                string
	pprofAddr            string
	tracePath            string
	traceSummary         bool
}

// validate rejects flag combinations before any expensive work (world
// construction, training) starts, so operator mistakes fail in milliseconds
// with a message naming the offending flag.
func (c runConfig) validate() error {
	if c.addr == "" {
		return errors.New("-addr must not be empty")
	}
	if c.trainOnly && c.trainPath == "" {
		return errors.New("-train-only requires -train")
	}
	switch c.fusionKind {
	case "early", "intermediate", "devise":
	default:
		return fmt.Errorf("-fusion %q: want early, intermediate, or devise", c.fusionKind)
	}
	if _, err := synth.TaskByName(c.taskName); err != nil {
		return fmt.Errorf("-task %q: %w", c.taskName, err)
	}
	if c.scale <= 0 {
		return fmt.Errorf("-scale %v: must be > 0", c.scale)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers %d: must be >= 0", c.workers)
	}
	if c.cache < 0 {
		return fmt.Errorf("-cache %d: must be >= 0", c.cache)
	}
	if c.canaryN < 0 {
		return fmt.Errorf("-canary %d: must be >= 0", c.canaryN)
	}
	if c.maxBatch < 0 {
		return fmt.Errorf("-max-batch %d: must be >= 0", c.maxBatch)
	}
	if c.maxWait < 0 {
		return fmt.Errorf("-max-wait %v: must be >= 0", c.maxWait)
	}
	if c.queue < 0 {
		return fmt.Errorf("-queue %d: must be >= 0", c.queue)
	}
	if c.timeout <= 0 {
		return fmt.Errorf("-timeout %v: must be > 0", c.timeout)
	}
	if c.quant != "" {
		if _, err := model.ParsePrecision(c.quant); err != nil {
			return fmt.Errorf("-quant %q: %w", c.quant, err)
		}
	}
	return nil
}

func run(cfg runConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	var summaryW io.Writer
	if cfg.traceSummary {
		summaryW = os.Stderr
	}
	stopTrace := trace.Capture(cfg.tracePath, summaryW)
	defer func() {
		if terr := stopTrace(); terr != nil {
			log.Printf("trace: %v", terr)
		}
	}()
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		return err
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		return err
	}
	store, err := featurestore.New(lib, cfg.cache)
	if err != nil {
		return err
	}

	startPath := cfg.modelPath
	if cfg.trainPath != "" {
		if err := train(world, lib, store, cfg); err != nil {
			return err
		}
		log.Printf("trained %s model for %s → %s", cfg.fusionKind, cfg.taskName, cfg.trainPath)
		if cfg.trainOnly {
			return nil
		}
		if startPath == "" {
			startPath = cfg.trainPath
		}
	}

	canary := make([]*synth.Point, cfg.canaryN)
	for i := range canary {
		// IDs far above live traffic, so canary cache slots never collide
		// with request points.
		canary[i] = serve.DerivePoint(world, cfg.seed, 1<<30+i, synth.Image, 0)
	}
	srv, err := serve.New(serve.Config{
		Store:   store,
		World:   world,
		Seed:    cfg.seed,
		Workers: cfg.workers,
		Timeout: cfg.timeout,
		Batcher: serve.BatcherConfig{
			MaxBatchSize: cfg.maxBatch,
			MaxWait:      cfg.maxWait,
			QueueDepth:   cfg.queue,
		},
	}, canary)
	if err != nil {
		return err
	}
	defer srv.Close()

	if startPath != "" {
		l, err := srv.Registry().LoadArtifact(startPath)
		if err != nil {
			return fmt.Errorf("load %s: %w", startPath, err)
		}
		log.Printf("serving %s model (seq %d) from %s", l.Kind, l.Seq, l.Path)
	} else {
		log.Printf("no model loaded; POST /admin/reload to install one")
	}

	if cfg.pprofAddr != "" {
		// net/http/pprof registers on the default mux; expose it on its own
		// listener so profiling never mixes with serving traffic.
		go func() { log.Printf("pprof: %v", http.ListenAndServe(cfg.pprofAddr, nil)) }()
	}

	hs := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", cfg.addr)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}

// train builds a dataset for the task and trains the requested fusion
// architecture on the labeled text corpus plus the hand-labeled image pool —
// the fully supervised path, which is all serving needs (the weak-supervision
// pipeline lives in cmd/crossmodal).
func train(world *synth.World, lib *resource.Library, store *featurestore.Store, cfg runConfig) error {
	task, err := synth.TaskByName(cfg.taskName)
	if err != nil {
		return err
	}
	dsCfg := synth.DefaultDatasetConfig()
	dsCfg.Seed = cfg.seed
	dsCfg.NumText = max(1, int(float64(dsCfg.NumText)*cfg.scale))
	dsCfg.NumUnlabeledImage = max(1, int(float64(dsCfg.NumUnlabeledImage)*cfg.scale))
	dsCfg.NumHandLabelPool = max(1, int(float64(dsCfg.NumHandLabelPool)*cfg.scale))
	dsCfg.NumTest = max(1, int(float64(dsCfg.NumTest)*cfg.scale))
	ds, err := synth.BuildDataset(world, task, dsCfg)
	if err != nil {
		return err
	}

	ctx := context.Background()
	mrCfg := mapreduce.Config{Workers: cfg.workers}
	corpusOf := func(name string, pts []*synth.Point) (fusion.Corpus, error) {
		vecs, err := store.Featurize(ctx, mrCfg, pts)
		if err != nil {
			return fusion.Corpus{}, err
		}
		targets := make([]float64, len(pts))
		for i, p := range pts {
			if p.Label > 0 {
				targets[i] = 1
			}
		}
		return fusion.Corpus{Name: name, Vectors: vecs, Targets: targets}, nil
	}
	text, err := corpusOf("text", ds.LabeledText)
	if err != nil {
		return err
	}
	image, err := corpusOf("image", ds.HandLabelPool)
	if err != nil {
		return err
	}

	fcfg := fusion.Config{
		Schema: lib.Schema().Servable(),
		Model: model.Config{
			Hidden:       []int{16},
			Epochs:       4,
			Seed:         cfg.seed,
			LearningRate: 0.02,
			Workers:      cfg.workers,
		},
	}
	var m fusion.Predictor
	switch cfg.fusionKind {
	case "early":
		m, err = fusion.TrainEarly(ctx, []fusion.Corpus{text, image}, fcfg)
	case "intermediate":
		m, err = fusion.TrainIntermediate(ctx, []fusion.Corpus{text, image}, fcfg)
	case "devise":
		m, err = fusion.TrainDeViSE(ctx, []fusion.Corpus{text}, image, fcfg)
	default:
		return fmt.Errorf("unknown fusion kind %q", cfg.fusionKind)
	}
	if err != nil {
		return err
	}
	// Stamp the serving precision into the artifact. Only early fusion has
	// a quantized engine; the other architectures keep the float64 path.
	if cfg.quant != "" {
		prec, perr := model.ParsePrecision(cfg.quant)
		if perr != nil {
			return perr
		}
		if em, ok := m.(*fusion.EarlyModel); ok && prec != model.Float64 {
			if err := em.SetServePrecision(prec); err != nil {
				return err
			}
			log.Printf("artifact stamped for %s serving", prec)
		}
	}
	return fusion.SaveFile(cfg.trainPath, m)
}
