package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// goodConfig mirrors the flag defaults.
func goodConfig() runConfig {
	return runConfig{task: "CT1", n: 1000, seed: 17, corpus: "text"}
}

func TestRunConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*runConfig)
		wantErr string // "" means valid
	}{
		{"defaults", func(*runConfig) {}, ""},
		{"image corpus", func(c *runConfig) { c.corpus = "image" }, ""},
		{"test corpus", func(c *runConfig) { c.corpus = "test" }, ""},
		{"other task", func(c *runConfig) { c.task = "CT3" }, ""},
		{"single point", func(c *runConfig) { c.n = 1 }, ""},

		{"unknown task", func(c *runConfig) { c.task = "CT0" }, "CT0"},
		{"zero n", func(c *runConfig) { c.n = 0 }, "-n"},
		{"negative n", func(c *runConfig) { c.n = -5 }, "-n"},
		{"unknown corpus", func(c *runConfig) { c.corpus = "video" }, "corpus"},
		{"empty corpus", func(c *runConfig) { c.corpus = "" }, "corpus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the problem (%q)", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsInvalidConfigFast: run() must reject before building the
// synthetic world.
func TestRunRejectsInvalidConfigFast(t *testing.T) {
	cfg := goodConfig()
	cfg.corpus = "video"
	start := time.Now()
	if err := run(cfg); err == nil {
		t.Fatal("run() accepted an unknown corpus")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("invalid config took %v to reject", elapsed)
	}
}

// TestRunWritesJSONL exercises the happy path end to end at tiny scale: the
// exported file must be valid JSON lines with the requested corpus size.
func TestRunWritesJSONL(t *testing.T) {
	dir := t.TempDir()
	out := dir + "/pts.jsonl"
	cfg := runConfig{task: "CT1", n: 8, seed: 3, corpus: "test", out: out}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 8 {
		t.Fatalf("exported %d lines, want 8", len(lines))
	}
	for i, line := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if _, ok := rec["features"]; !ok {
			t.Fatalf("line %d has no features: %s", i, line)
		}
		if _, ok := rec["label"]; !ok {
			t.Fatalf("line %d (test corpus) has no label: %s", i, line)
		}
	}
}

// TestStreamModeMatchesMaterialized: -stream emits byte-identical output to
// the materialized path at every corpus, including with a chunk size that
// does not divide the corpus.
func TestStreamModeMatchesMaterialized(t *testing.T) {
	dir := t.TempDir()
	for _, corpus := range []string{"text", "image", "test"} {
		mat := dir + "/" + corpus + "-mat.jsonl"
		str := dir + "/" + corpus + "-str.jsonl"
		if err := run(runConfig{task: "CT1", n: 20, seed: 5, corpus: corpus, out: mat}); err != nil {
			t.Fatal(err)
		}
		if err := run(runConfig{task: "CT1", n: 20, seed: 5, corpus: corpus, out: str, stream: true, chunk: 7}); err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(mat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(str)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: streamed export differs from materialized export", corpus)
		}
	}
}

// TestStreamModeRejectsBadChunk: chunk validation applies in stream mode.
func TestStreamModeRejectsBadChunk(t *testing.T) {
	cfg := goodConfig()
	cfg.stream = true
	cfg.chunk = 0
	if err := run(cfg); err == nil {
		t.Fatal("stream mode accepted chunk 0")
	}
}
