// Command datagen samples a synthetic cross-modal dataset, featurizes it
// through the organizational-resource library, and writes it as JSON lines —
// one object per data point with its modality, ground-truth label (withheld
// for the unlabeled corpus), and common-feature values. Useful for
// inspecting the feature space or feeding external tools.
//
// Usage:
//
//	datagen [-task CT1] [-n 1000] [-seed 17] [-corpus text|image|test] [-o out.jsonl]
//
// With -stream the corpus is generated, featurized, and written chunk by
// chunk (chunk size -chunk) instead of materializing the whole dataset
// first, so memory stays bounded by the chunk size — the CLI face of the
// streaming curation path. The emitted records are byte-identical to the
// materialized mode at the same flags.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"crossmodal/internal/feature"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// record is the JSON shape of one exported data point.
type record struct {
	ID       int                    `json:"id"`
	Modality string                 `json:"modality"`
	Label    *int8                  `json:"label,omitempty"` // omitted for the unlabeled corpus
	Features map[string]interface{} `json:"features"`
}

// runConfig carries the parsed flags; validate rejects bad combinations
// before the world is built.
type runConfig struct {
	task   string
	n      int
	seed   int64
	corpus string
	out    string
	stream bool
	chunk  int
}

func (c runConfig) validate() error {
	if _, err := synth.TaskByName(c.task); err != nil {
		return err
	}
	if c.n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", c.n)
	}
	if c.stream && c.chunk <= 0 {
		return fmt.Errorf("-chunk must be positive in -stream mode, got %d", c.chunk)
	}
	switch c.corpus {
	case "text", "image", "test":
	default:
		return fmt.Errorf("unknown corpus %q (want text, image, or test)", c.corpus)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var cfg runConfig
	flag.StringVar(&cfg.task, "task", "CT1", "classification task (CT1..CT5)")
	flag.IntVar(&cfg.n, "n", 1000, "number of points per corpus")
	flag.Int64Var(&cfg.seed, "seed", 17, "random seed")
	flag.StringVar(&cfg.corpus, "corpus", "text", "corpus to export: text, image, or test")
	flag.StringVar(&cfg.out, "o", "", "output file (default stdout)")
	flag.BoolVar(&cfg.stream, "stream", false, "generate and featurize chunk by chunk (bounded memory)")
	flag.IntVar(&cfg.chunk, "chunk", 4096, "points per chunk in -stream mode")
	flag.Parse()
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg runConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	taskName, n, seed, corpus, out := cfg.task, cfg.n, cfg.seed, cfg.corpus, cfg.out
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		return err
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		return err
	}
	task, err := synth.TaskByName(taskName)
	if err != nil {
		return err
	}
	dsCfg := synth.DatasetConfig{
		Seed:              seed,
		NumText:           n,
		NumUnlabeledImage: n,
		NumHandLabelPool:  1,
		NumTest:           n,
	}

	w := bufio.NewWriter(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = bufio.NewWriter(f)
	}
	enc := json.NewEncoder(w)
	labeled := corpus == "text" || corpus == "test"
	emit := func(pts []*synth.Point) error {
		for _, p := range pts {
			rec := record{
				ID:       p.ID,
				Modality: string(p.Modality),
				Features: featureMap(lib.FeaturizePoint(p)),
			}
			if labeled {
				label := p.Label
				rec.Label = &label
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}

	if cfg.stream {
		want := map[string]synth.CorpusKind{
			"text": synth.TextCorpus, "image": synth.ImageCorpus, "test": synth.TestCorpus,
		}[corpus]
		stream, err := synth.NewStream(world, task, dsCfg)
		if err != nil {
			return err
		}
		for {
			ch := stream.Next(cfg.chunk)
			if ch == nil {
				break
			}
			if ch.Corpus != want {
				continue
			}
			if err := emit(ch.Points); err != nil {
				return err
			}
		}
		return w.Flush()
	}

	ds, err := synth.BuildDataset(world, task, dsCfg)
	if err != nil {
		return err
	}
	var pts []*synth.Point
	switch corpus {
	case "text":
		pts = ds.LabeledText
	case "image":
		pts = ds.UnlabeledImage
	case "test":
		pts = ds.TestImage
	}
	if err := emit(pts); err != nil {
		return err
	}
	return w.Flush()
}

// featureMap renders a vector's non-missing values as JSON-friendly types.
func featureMap(v *feature.Vector) map[string]interface{} {
	out := make(map[string]interface{})
	schema := v.Schema()
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		val := v.At(i)
		if val.Missing {
			continue
		}
		switch d.Kind {
		case feature.Categorical:
			out[d.Name] = val.Categories
		case feature.Numeric:
			out[d.Name] = val.Num
		case feature.Embedding:
			out[d.Name] = val.Vec
		}
	}
	return out
}
