// Command lifecycle runs the closed adaptation loop end to end against a
// simulated drifting organization: it bootstraps a weakly supervised model,
// serves it over HTTP, replays a seeded drift schedule through the server,
// and lets the lifecycle controller detect the shift, re-mine and retrain on
// a fresh window, shadow-score the candidate, and hot-swap it through the
// canary-gated /admin/reload — printing the deterministic event log.
//
// Usage:
//
//	lifecycle [-task CT1] [-seed 17] [-window 300] [-windows 8]
//	          [-drift-window 3] [-shift 2.5] [-decay 0.35]
//	          [-simulate-drift] [-scale 0.05] [-workers 1]
//	          [-artifacts DIR] [-out events.json]
//
// With -simulate-drift (the default) the traffic schedule injects a
// topic/URL prior shift plus fidelity decay at -drift-window; with
// -simulate-drift=false the world never moves and the controller must never
// retrain — the zero-drift control run the smoke test asserts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"crossmodal/internal/core"
	"crossmodal/internal/featurestore"
	"crossmodal/internal/fusion"
	"crossmodal/internal/lifecycle"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/serve"
	"crossmodal/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lifecycle: ")
	var (
		taskName    = flag.String("task", "CT1", "classification task (CT1..CT5)")
		seed        = flag.Int64("seed", 17, "seed for the world, schedule, and every controller decision")
		window      = flag.Int("window", 300, "traffic points per observation window")
		windows     = flag.Int("windows", 8, "total observation windows to replay")
		driftWindow = flag.Int("drift-window", 3, "window index where the shifted regime begins")
		shift       = flag.Float64("shift", 2.5, "topic-prior shift magnitude at the changepoint")
		decay       = flag.Float64("decay", 0.35, "per-attribute observation decay in the shifted regime")
		simDrift    = flag.Bool("simulate-drift", true, "inject the drift episode (false: static world, loop must stay quiet)")
		scale       = flag.Float64("scale", 0.05, "training corpus scale factor for bootstrap and retrains")
		workers     = flag.Int("workers", 1, "worker goroutines per parallel stage (1 for bit-reproducible runs)")
		artifacts   = flag.String("artifacts", "", "artifact directory (default: a fresh temp dir)")
		outPath     = flag.String("out", "", "write the run result (event log + counters) as JSON here")
	)
	flag.Parse()
	if err := run(*taskName, *seed, *window, *windows, *driftWindow, *shift, *decay,
		*simDrift, *scale, *workers, *artifacts, *outPath); err != nil {
		log.Fatal(err)
	}
}

func run(taskName string, seed int64, window, windows, driftWindow int,
	shift, decay float64, simDrift bool, scale float64, workers int,
	artifacts, outPath string) error {
	switch {
	case window <= 0 || windows <= 0:
		return fmt.Errorf("-window and -windows must be > 0")
	case simDrift && (driftWindow <= 0 || driftWindow >= windows):
		return fmt.Errorf("-drift-window %d must fall inside (0, %d)", driftWindow, windows)
	case scale <= 0:
		return fmt.Errorf("-scale must be > 0")
	}
	task, err := synth.TaskByName(taskName)
	if err != nil {
		return err
	}
	if artifacts == "" {
		dir, err := os.MkdirTemp("", "lifecycle-artifacts-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		artifacts = dir
	}

	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		return err
	}
	sched := synth.DriftSchedule{Seed: seed, Epochs: []synth.Epoch{{N: windows * window}}}
	if simDrift {
		sched.Epochs = []synth.Epoch{
			{N: driftWindow * window},
			{N: (windows - driftWindow) * window, TopicShift: shift, URLShift: shift * 0.75, Decay: decay},
		}
	}
	traffic, err := synth.NewTraffic(world, task, sched)
	if err != nil {
		return err
	}

	lib, err := resource.StandardLibrary(world)
	if err != nil {
		return err
	}
	store, err := featurestore.New(lib, 65536)
	if err != nil {
		return err
	}

	opts := core.DefaultOptions()
	opts.StreamMining = true
	opts.Workers = workers
	opts.Seed = seed
	opts.MaxGraphSeeds = 1200
	opts.GraphDevNodes = 500
	opts.Graph.MaxCandidates = 120
	opts.Model = model.Config{Epochs: 5, LearningRate: 0.02, Seed: seed, Workers: workers}
	pipe, err := core.NewPipeline(lib, opts)
	if err != nil {
		return err
	}

	dsCfg := synth.DefaultDatasetConfig()
	dsCfg.Seed = seed
	dsCfg.NumText = max(1, int(float64(dsCfg.NumText)*scale))
	dsCfg.NumUnlabeledImage = max(1, int(float64(dsCfg.NumUnlabeledImage)*scale))
	dsCfg.NumHandLabelPool = max(1, int(float64(dsCfg.NumHandLabelPool)*scale))
	dsCfg.NumTest = max(1, int(float64(dsCfg.NumTest)*scale))

	ctx := context.Background()
	log.Printf("bootstrapping %s model (scale %.2f, stream-mined)", taskName, scale)
	ds, err := traffic.FreshDataset(0, dsCfg)
	if err != nil {
		return err
	}
	cur, err := pipe.Curate(ctx, ds)
	if err != nil {
		return err
	}
	incumbent, err := pipe.Train(ctx, cur, pipe.DefaultTrainSpec())
	if err != nil {
		return err
	}
	bootPath := filepath.Join(artifacts, "bootstrap.xma")
	if err := fusion.SaveFileLineage(bootPath, incumbent, &fusion.Lineage{
		Task: task.Name, Trigger: "bootstrap", Seed: seed,
	}); err != nil {
		return err
	}

	// Canary IDs sit far past the schedule, where the final regime persists:
	// they never collide with live window points, and after a promotion they
	// exercise the candidate on current-regime traffic.
	canary := make([]*synth.Point, 48)
	for i := range canary {
		canary[i] = traffic.Point(1<<30 + i)
	}
	srv, err := serve.New(serve.Config{
		Store:   store,
		World:   world,
		Seed:    seed,
		Workers: workers,
		Timeout: 5 * time.Second,
		PointSource: func(id int, _ synth.Modality, _ int) *synth.Point {
			return traffic.Point(id)
		},
	}, canary)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	if _, err := srv.Registry().LoadArtifact(bootPath); err != nil {
		return fmt.Errorf("install bootstrap artifact: %w", err)
	}
	baseURL := "http://" + ln.Addr().String()
	log.Printf("serving on %s; replaying %d windows x %d points", baseURL, windows, window)

	ctrl, err := lifecycle.New(lifecycle.Config{
		Traffic:       traffic,
		Store:         store,
		Pipe:          pipe,
		BaseURL:       baseURL,
		Incumbent:     incumbent,
		IncumbentPath: bootPath,
		WindowSize:    window,
		Retrain:       dsCfg,
		ArtifactDir:   artifacts,
		Seed:          seed,
	})
	if err != nil {
		return err
	}
	res, err := ctrl.Run(ctx)
	if err != nil {
		return err
	}

	for _, e := range res.Events {
		line := fmt.Sprintf("w=%02d %-13s", e.Window, e.Type)
		if e.Channel != "" {
			line += " [" + e.Channel + "]"
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		if e.Seq > 0 {
			line += fmt.Sprintf(" seq=%d", e.Seq)
		}
		log.Print(line)
	}
	log.Printf("windows=%d detections=%d retrains=%d promotions=%d rejections=%d final_seq=%d",
		res.Windows, res.Detections, res.Retrains, res.Promotions, res.Rejections, res.FinalSeq)

	if outPath != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", outPath)
	}
	if simDrift && res.Promotions == 0 {
		return fmt.Errorf("drift was injected but no candidate was promoted (detections=%d retrains=%d)",
			res.Detections, res.Retrains)
	}
	if !simDrift && res.Retrains > 0 {
		return fmt.Errorf("static world but the controller retrained %d times", res.Retrains)
	}
	return nil
}
