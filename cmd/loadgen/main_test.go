package main

import (
	"strings"
	"testing"
	"time"
)

func goodGenConfig() genConfig {
	return genConfig{
		url: "http://127.0.0.1:8099", mode: "closed", qps: 2000,
		conns: 8, ids: 4096, batch: 1,
		duration: 5 * time.Second, timeout: 2 * time.Second,
	}
}

func TestGenConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*genConfig)
		wantErr string // "" means valid
	}{
		{"defaults", func(*genConfig) {}, ""},
		{"open mode", func(c *genConfig) { c.mode = "open" }, ""},
		{"closed ignores qps", func(c *genConfig) { c.qps = 0 }, ""},

		{"empty url", func(c *genConfig) { c.url = "" }, "-url"},
		{"unknown mode", func(c *genConfig) { c.mode = "burst" }, "-mode"},
		{"open without qps", func(c *genConfig) { c.mode = "open"; c.qps = 0 }, "-qps"},
		{"open negative qps", func(c *genConfig) { c.mode = "open"; c.qps = -5 }, "-qps"},
		{"zero conns", func(c *genConfig) { c.conns = 0 }, "-conns"},
		{"zero ids", func(c *genConfig) { c.ids = 0 }, "-ids"},
		{"zero batch", func(c *genConfig) { c.batch = 0 }, "-batch"},
		{"zero duration", func(c *genConfig) { c.duration = 0 }, "-duration"},
		{"negative timeout", func(c *genConfig) { c.timeout = -time.Second }, "-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodGenConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag (%q)", err, tc.wantErr)
			}
		})
	}
}
