// Command loadgen drives the inference service at a target rate and reports
// latency and shed-rate statistics. It emits its summary both as a human
// table and as `go test -bench`-style lines, so the existing benchjson flow
// archives serving benchmarks the same way it archives training ones:
//
//	loadgen -url http://127.0.0.1:8099 -qps 2000 -duration 10s | benchjson -o BENCH_serve.json
//
// Two load modes:
//
//   - closed (default): -conns workers issue requests back-to-back; the
//     offered rate is whatever the server sustains (throughput probe).
//   - open: requests are paced at -qps regardless of completions (the
//     shed-behavior probe — an overloaded server must answer 429 quickly,
//     not build a backlog).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		url       = flag.String("url", "http://127.0.0.1:8099", "server base URL")
		qps       = flag.Int("qps", 2000, "target request rate (open mode only)")
		duration  = flag.Duration("duration", 5*time.Second, "how long to drive load")
		conns     = flag.Int("conns", 8, "concurrent workers / connections")
		batch     = flag.Int("batch", 1, "points per request; throughput and shed stats count points")
		mode      = flag.String("mode", "closed", "load mode: closed (back-to-back) or open (paced at -qps)")
		ids       = flag.Int("ids", 4096, "request ID space; IDs cycle over [0, ids)")
		waitReady = flag.Duration("wait-ready", 10*time.Second, "poll /readyz this long before driving load (0 skips)")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request client timeout")
	)
	flag.Parse()
	cfg := genConfig{
		url: *url, mode: *mode, qps: *qps, conns: *conns, ids: *ids, batch: *batch,
		duration: *duration, timeout: *timeout,
	}
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}
	if err := waitUntilReady(*url, *waitReady); err != nil {
		log.Fatal(err)
	}
	res := drive(*url, *mode, *qps, *conns, *ids, *batch, *duration, *timeout)
	report(res, *mode, *qps)
	if res.ok == 0 {
		os.Exit(1)
	}
}

// genConfig is the validated flag set of one load-generation run.
type genConfig struct {
	url, mode              string
	qps, conns, ids, batch int
	duration, timeout      time.Duration
}

// validate rejects flag combinations that would drive no load or divide by
// zero, naming the offending flag.
func (c genConfig) validate() error {
	if c.url == "" {
		return fmt.Errorf("-url must not be empty")
	}
	if c.mode != "closed" && c.mode != "open" {
		return fmt.Errorf("-mode %q: want closed or open", c.mode)
	}
	if c.mode == "open" && c.qps <= 0 {
		return fmt.Errorf("-qps %d: open mode needs a rate > 0", c.qps)
	}
	if c.conns <= 0 {
		return fmt.Errorf("-conns %d: must be > 0", c.conns)
	}
	if c.ids <= 0 {
		return fmt.Errorf("-ids %d: must be > 0", c.ids)
	}
	if c.batch <= 0 {
		return fmt.Errorf("-batch %d: must be > 0", c.batch)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration %v: must be > 0", c.duration)
	}
	if c.timeout <= 0 {
		return fmt.Errorf("-timeout %v: must be > 0", c.timeout)
	}
	return nil
}

func waitUntilReady(url string, budget time.Duration) error {
	if budget <= 0 {
		return nil
	}
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", url, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// result aggregates one run. Latencies are recorded per worker and merged
// afterwards, so the hot path takes no lock.
type result struct {
	ok, shed, notReady, failed uint64
	latencies                  []time.Duration // successful requests only
	elapsed                    time.Duration
}

func drive(url, mode string, qps, conns, ids, batch int, duration, timeout time.Duration) *result {
	client := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        conns * 2,
			MaxIdleConnsPerHost: conns * 2,
		},
	}

	// Open mode: a paced token channel; workers block on it. Pacing is
	// deficit-based — every millisecond the pacer issues however many
	// tokens elapsed wall time says are owed — because a per-request
	// ticker at sub-millisecond intervals coalesces missed ticks and
	// silently undershoots the target rate. Tokens that find the buffer
	// full are dropped, not deferred: an open-loop generator never lets
	// a slow server push the offered load into the future.
	var tokens chan struct{}
	stop := make(chan struct{})
	pacerStart := time.Now()
	if mode == "open" {
		tokens = make(chan struct{}, max(1, qps/10))
		go func() {
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			var issued int64
			for {
				select {
				case <-tick.C:
					owed := int64(time.Since(pacerStart).Seconds()*float64(qps)) - issued
					for ; owed > 0; owed-- {
						issued++
						select {
						case tokens <- struct{}{}:
						default: // workers saturated; shed at the client
						}
					}
				case <-stop:
					return
				}
			}
		}()
	}

	var nextID atomic.Uint64
	var ok, shed, notReady, failed atomic.Uint64
	perWorker := make([][]time.Duration, conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, 4096)
			body := make([]byte, 0, 64)
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
					}
					if !time.Now().Before(deadline) {
						break
					}
				}
				body = body[:0]
				body = append(body, `{"points":[`...)
				for k := 0; k < batch; k++ {
					if k > 0 {
						body = append(body, ',')
					}
					body = append(body, `{"id":`...)
					body = appendInt(body, int(nextID.Add(1))%ids)
					body = append(body, '}')
				}
				body = append(body, `]}`...)
				t0 := time.Now()
				resp, err := client.Post(url+"/predict", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					failed.Add(1)
					continue
				}
				// Drain before closing: an unread body forces the transport
				// to tear down the connection, and at serving rates the
				// TCP+TLS setup tax dwarfs everything else.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// Counters are per point, so throughput and shed rates mean
				// the same thing at every -batch setting. Latency is per
				// request: every point in a batch waits for the whole reply.
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(uint64(batch))
					lats = append(lats, lat)
				case http.StatusTooManyRequests, http.StatusGatewayTimeout:
					shed.Add(uint64(batch))
				case http.StatusServiceUnavailable:
					notReady.Add(uint64(batch))
				default:
					failed.Add(uint64(batch))
				}
			}
			perWorker[w] = lats
		}(w)
	}
	wg.Wait()
	close(stop)

	res := &result{
		ok:       ok.Load(),
		shed:     shed.Load(),
		notReady: notReady.Load(),
		failed:   failed.Load(),
		elapsed:  time.Since(start),
	}
	for _, lats := range perWorker {
		res.latencies = append(res.latencies, lats...)
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res
}

func appendInt(b []byte, v int) []byte {
	return strconv.AppendInt(b, int64(v), 10)
}

func (r *result) quantile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(r.latencies)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.latencies) {
		i = len(r.latencies) - 1
	}
	return r.latencies[i]
}

func report(r *result, mode string, qps int) {
	total := r.ok + r.shed + r.notReady + r.failed
	achieved := float64(r.ok) / r.elapsed.Seconds()
	fmt.Printf("mode=%s points=%d ok=%d shed=%d not_ready=%d failed=%d\n",
		mode, total, r.ok, r.shed, r.notReady, r.failed)
	if mode == "open" {
		fmt.Printf("target %d req/s, achieved %.0f req/s over %.2fs\n", qps, achieved, r.elapsed.Seconds())
	} else {
		fmt.Printf("achieved %.0f req/s over %.2fs\n", achieved, r.elapsed.Seconds())
	}
	p50, p95, p99 := r.quantile(0.50), r.quantile(0.95), r.quantile(0.99)
	var pMax time.Duration
	if n := len(r.latencies); n > 0 {
		pMax = r.latencies[n-1]
	}
	fmt.Printf("latency p50=%s p95=%s p99=%s max=%s\n", p50, p95, p99, pMax)

	// Bench-format lines for benchjson: `<name> <iterations> <value> ns/op`.
	// Iterations carry the sample count; the value is the statistic.
	fmt.Println()
	emit := func(name string, n uint64, ns float64) {
		fmt.Printf("Benchmark%s \t%d\t%.0f ns/op\n", name, n, ns)
	}
	emit("ServeLatencyP50", r.ok, float64(p50.Nanoseconds()))
	emit("ServeLatencyP95", r.ok, float64(p95.Nanoseconds()))
	emit("ServeLatencyP99", r.ok, float64(p99.Nanoseconds()))
	if achieved > 0 {
		// Mean inter-completion time: 1e9/achieved — "ns per served request".
		emit("ServeThroughput", r.ok, 1e9/achieved)
	}
	emit("ServeShedCount", total, float64(r.shed))
}
