package main

import (
	"strings"
	"testing"
	"time"
)

// goodConfig mirrors the flag defaults.
func goodConfig() runConfig {
	return runConfig{task: "CT1", scale: 1.0, seed: 17, fusion: "early"}
}

func TestRunConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*runConfig)
		wantErr string // "" means valid
	}{
		{"defaults", func(*runConfig) {}, ""},
		{"other task", func(c *runConfig) { c.task = "CT5" }, ""},
		{"intermediate fusion", func(c *runConfig) { c.fusion = "intermediate" }, ""},
		{"devise fusion", func(c *runConfig) { c.fusion = "devise" }, ""},
		{"small scale", func(c *runConfig) { c.scale = 0.05 }, ""},
		{"explicit workers", func(c *runConfig) { c.workers = 4 }, ""},
		{"trace flags", func(c *runConfig) { c.tracePath = "t.json"; c.traceSummary = true }, ""},

		{"unknown task", func(c *runConfig) { c.task = "CT9" }, "CT9"},
		{"empty task", func(c *runConfig) { c.task = "" }, "task"},
		{"zero scale", func(c *runConfig) { c.scale = 0 }, "-scale"},
		{"negative scale", func(c *runConfig) { c.scale = -0.5 }, "-scale"},
		{"negative workers", func(c *runConfig) { c.workers = -1 }, "-workers"},
		{"bad fusion", func(c *runConfig) { c.fusion = "late" }, "fusion"},
		{"empty fusion", func(c *runConfig) { c.fusion = "" }, "fusion"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the problem (%q)", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsInvalidConfigFast: run() must fail on validation before any
// expensive setup (world construction, featurization).
func TestRunRejectsInvalidConfigFast(t *testing.T) {
	cfg := goodConfig()
	cfg.fusion = "late"
	start := time.Now()
	if err := run(cfg); err == nil {
		t.Fatal("run() accepted a bad fusion kind")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("invalid config took %v to reject", elapsed)
	}
}
