// Command crossmodal runs the cross-modal adaptation pipeline end to end on
// one synthetic task and prints a stage-by-stage report: mined labeling
// functions, weak-supervision quality, and the trained model's AUPRC against
// the text-only, image-only, and embedding-baseline comparisons.
//
// Usage:
//
//	crossmodal [-task CT1] [-scale 1.0] [-seed 17] [-fusion early|intermediate|devise]
//	           [-no-labelprop] [-expert-lfs] [-workers N] [-v]
//	           [-trace trace.json] [-trace-summary]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"crossmodal/internal/core"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
	"crossmodal/internal/profiling"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

// runConfig carries the parsed flags; validate rejects bad combinations
// before any corpus is built.
type runConfig struct {
	task         string
	scale        float64
	seed         int64
	fusion       string
	noLabelProp  bool
	expertLFs    bool
	workers      int
	verbose      bool
	cpuProfile   string
	memProfile   string
	tracePath    string
	traceSummary bool
}

func (c runConfig) validate() error {
	if _, err := synth.TaskByName(c.task); err != nil {
		return err
	}
	if c.scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %v", c.scale)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", c.workers)
	}
	switch core.FusionKind(c.fusion) {
	case core.EarlyFusion, core.IntermediateFusion, core.DeViSE:
	default:
		return fmt.Errorf("unknown fusion kind %q (want early, intermediate, or devise)", c.fusion)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossmodal: ")
	var cfg runConfig
	flag.StringVar(&cfg.task, "task", "CT1", "classification task (CT1..CT5)")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "corpus scale factor")
	flag.Int64Var(&cfg.seed, "seed", 17, "random seed")
	flag.StringVar(&cfg.fusion, "fusion", "early", "fusion architecture: early, intermediate, devise")
	flag.BoolVar(&cfg.noLabelProp, "no-labelprop", false, "disable the label-propagation LF")
	flag.BoolVar(&cfg.expertLFs, "expert-lfs", false, "use simulated-expert LFs instead of mining")
	flag.IntVar(&cfg.workers, "workers", 0, "worker goroutines per parallel stage (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.verbose, "v", false, "print per-LF development statistics")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&cfg.tracePath, "trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing or ui.perfetto.dev)")
	flag.BoolVar(&cfg.traceSummary, "trace-summary", false, "print the aggregated stage tree to stderr on exit")
	flag.Parse()
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg runConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	stopProf, err := profiling.Start(cfg.cpuProfile, cfg.memProfile)
	if err != nil {
		return err
	}
	var summaryW io.Writer
	if cfg.traceSummary {
		summaryW = os.Stderr
	}
	stopTrace := trace.Capture(cfg.tracePath, summaryW)
	if err := pipelineReport(cfg); err != nil {
		return err
	}
	if err := stopTrace(); err != nil {
		return err
	}
	return stopProf()
}

func pipelineReport(cfg runConfig) error {
	taskName, scale, seed := cfg.task, cfg.scale, cfg.seed
	fusionKind, noLabelProp, expertLFs := cfg.fusion, cfg.noLabelProp, cfg.expertLFs
	workers, verbose := cfg.workers, cfg.verbose
	ctx := context.Background()
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		return err
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		return err
	}
	task, err := synth.TaskByName(taskName)
	if err != nil {
		return err
	}
	dsCfg := synth.DefaultDatasetConfig()
	dsCfg.Seed = seed
	dsCfg.NumText = int(float64(dsCfg.NumText) * scale)
	dsCfg.NumUnlabeledImage = int(float64(dsCfg.NumUnlabeledImage) * scale)
	dsCfg.NumHandLabelPool = int(float64(dsCfg.NumHandLabelPool) * scale)
	dsCfg.NumTest = int(float64(dsCfg.NumTest) * scale)
	ds, err := synth.BuildDataset(world, task, dsCfg)
	if err != nil {
		return err
	}
	fmt.Printf("task %s: %d labeled text, %d unlabeled image, %d test (%.1f%% positive)\n",
		task.Name, len(ds.LabeledText), len(ds.UnlabeledImage), len(ds.TestImage),
		100*synth.PositiveRate(ds.TestImage))

	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Workers = workers
	opts.Fusion = core.FusionKind(fusionKind)
	opts.UseLabelProp = !noLabelProp
	if expertLFs {
		opts.LFSource = core.ExpertLFs
	}
	pipe, err := core.NewPipeline(lib, opts)
	if err != nil {
		return err
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		return err
	}
	rep := res.Report
	fmt.Printf("\ncuration: %s\n", rep.Mining)
	fmt.Printf("labeling functions: %d (coverage %.1f%%)\n", rep.LFCount, 100*rep.WSCoverage)
	if opts.UseLabelProp {
		fmt.Printf("label propagation: %d iterations, cuts pos≥%.3f neg≤%.3f\n",
			rep.PropIters, rep.Cuts.Pos, rep.Cuts.Neg)
	}
	fmt.Printf("weak-supervision label quality vs hidden truth: P=%.3f R=%.3f F1=%.3f\n",
		rep.WSPrecision, rep.WSRecall, rep.WSF1)
	if verbose {
		fmt.Println("\nper-LF dev statistics:")
		devStats := rep.DevStats
		sort.Slice(devStats, func(i, j int) bool { return devStats[i].Name < devStats[j].Name })
		for _, s := range devStats {
			fmt.Printf("  %-44s p=%.3f r=%.4f cov=%.4f\n", s.Name, s.Precision, s.Recall, s.Coverage)
		}
	}

	var stages []string
	for name := range rep.Timings {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	fmt.Println("\nstage timings:")
	for _, name := range stages {
		fmt.Printf("  %-18s %s\n", name, rep.Timings[name].Round(1e6))
	}

	// Comparisons.
	crossAUPRC, err := pipe.EvaluateAUPRC(ctx, res.Predictor, ds.TestImage)
	if err != nil {
		return err
	}
	mcfg := model.Config{Epochs: 6, LearningRate: 0.02, Seed: 11, Workers: workers}
	basePred, err := pipe.TrainSupervised(ctx, ds.HandLabelPool, pipe.EmbeddingOnlySchema(), mcfg)
	if err != nil {
		return err
	}
	baseAUPRC, err := pipe.EvaluateAUPRC(ctx, basePred, ds.TestImage)
	if err != nil {
		return err
	}
	textSpec := pipe.DefaultTrainSpec()
	textSpec.UseText, textSpec.UseImage = true, false
	textPred, err := pipe.Train(ctx, res.Curation, textSpec)
	if err != nil {
		return err
	}
	textAUPRC, err := pipe.EvaluateAUPRC(ctx, textPred, ds.TestImage)
	if err != nil {
		return err
	}
	imageSpec := pipe.DefaultTrainSpec()
	imageSpec.UseText, imageSpec.UseImage = false, true
	imagePred, err := pipe.Train(ctx, res.Curation, imageSpec)
	if err != nil {
		return err
	}
	imageAUPRC, err := pipe.EvaluateAUPRC(ctx, imagePred, ds.TestImage)
	if err != nil {
		return err
	}

	fmt.Printf("\ntest AUPRC (base rate %.3f):\n", metrics.BaseRate(synth.Labels(ds.TestImage)))
	rows := []struct {
		name  string
		auprc float64
	}{
		{"embedding baseline (fully supervised)", baseAUPRC},
		{"text only (fully supervised, transferred)", textAUPRC},
		{"image only (weakly supervised)", imageAUPRC},
		{fmt.Sprintf("cross-modal (%s fusion)", opts.Fusion), crossAUPRC},
	}
	for _, r := range rows {
		fmt.Printf("  %-44s %.3f (%.2f× baseline)\n", r.name, r.auprc, metrics.Relative(r.auprc, baseAUPRC))
	}
	if crossAUPRC < baseAUPRC {
		fmt.Fprintln(os.Stderr, "warning: cross-modal model below embedding baseline at this scale")
	}
	return nil
}
