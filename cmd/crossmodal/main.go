// Command crossmodal runs the cross-modal adaptation pipeline end to end on
// one synthetic task and prints a stage-by-stage report: mined labeling
// functions, weak-supervision quality, and the trained model's AUPRC against
// the text-only, image-only, and embedding-baseline comparisons.
//
// Usage:
//
//	crossmodal [-task CT1] [-scale 1.0] [-seed 17] [-fusion early|intermediate|devise]
//	           [-no-labelprop] [-expert-lfs] [-workers N] [-v]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"crossmodal/internal/core"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
	"crossmodal/internal/profiling"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossmodal: ")
	var (
		taskName    = flag.String("task", "CT1", "classification task (CT1..CT5)")
		scale       = flag.Float64("scale", 1.0, "corpus scale factor")
		seed        = flag.Int64("seed", 17, "random seed")
		fusionKind  = flag.String("fusion", "early", "fusion architecture: early, intermediate, devise")
		noLabelProp = flag.Bool("no-labelprop", false, "disable the label-propagation LF")
		expertLFs   = flag.Bool("expert-lfs", false, "use simulated-expert LFs instead of mining")
		workers     = flag.Int("workers", 0, "worker goroutines per parallel stage (0 = GOMAXPROCS)")
		verbose     = flag.Bool("v", false, "print per-LF development statistics")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(*taskName, *scale, *seed, *fusionKind, *noLabelProp, *expertLFs, *workers, *verbose); err != nil {
		log.Fatal(err)
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
}

func run(taskName string, scale float64, seed int64, fusionKind string, noLabelProp, expertLFs bool, workers int, verbose bool) error {
	ctx := context.Background()
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		return err
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		return err
	}
	task, err := synth.TaskByName(taskName)
	if err != nil {
		return err
	}
	dsCfg := synth.DefaultDatasetConfig()
	dsCfg.Seed = seed
	dsCfg.NumText = int(float64(dsCfg.NumText) * scale)
	dsCfg.NumUnlabeledImage = int(float64(dsCfg.NumUnlabeledImage) * scale)
	dsCfg.NumHandLabelPool = int(float64(dsCfg.NumHandLabelPool) * scale)
	dsCfg.NumTest = int(float64(dsCfg.NumTest) * scale)
	ds, err := synth.BuildDataset(world, task, dsCfg)
	if err != nil {
		return err
	}
	fmt.Printf("task %s: %d labeled text, %d unlabeled image, %d test (%.1f%% positive)\n",
		task.Name, len(ds.LabeledText), len(ds.UnlabeledImage), len(ds.TestImage),
		100*synth.PositiveRate(ds.TestImage))

	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Workers = workers
	opts.Fusion = core.FusionKind(fusionKind)
	opts.UseLabelProp = !noLabelProp
	if expertLFs {
		opts.LFSource = core.ExpertLFs
	}
	pipe, err := core.NewPipeline(lib, opts)
	if err != nil {
		return err
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		return err
	}
	rep := res.Report
	fmt.Printf("\ncuration: %s\n", rep.Mining)
	fmt.Printf("labeling functions: %d (coverage %.1f%%)\n", rep.LFCount, 100*rep.WSCoverage)
	if opts.UseLabelProp {
		fmt.Printf("label propagation: %d iterations, cuts pos≥%.3f neg≤%.3f\n",
			rep.PropIters, rep.Cuts.Pos, rep.Cuts.Neg)
	}
	fmt.Printf("weak-supervision label quality vs hidden truth: P=%.3f R=%.3f F1=%.3f\n",
		rep.WSPrecision, rep.WSRecall, rep.WSF1)
	if verbose {
		fmt.Println("\nper-LF dev statistics:")
		devStats := rep.DevStats
		sort.Slice(devStats, func(i, j int) bool { return devStats[i].Name < devStats[j].Name })
		for _, s := range devStats {
			fmt.Printf("  %-44s p=%.3f r=%.4f cov=%.4f\n", s.Name, s.Precision, s.Recall, s.Coverage)
		}
	}

	var stages []string
	for name := range rep.Timings {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	fmt.Println("\nstage timings:")
	for _, name := range stages {
		fmt.Printf("  %-18s %s\n", name, rep.Timings[name].Round(1e6))
	}

	// Comparisons.
	crossAUPRC, err := pipe.EvaluateAUPRC(ctx, res.Predictor, ds.TestImage)
	if err != nil {
		return err
	}
	mcfg := model.Config{Epochs: 6, LearningRate: 0.02, Seed: 11, Workers: workers}
	basePred, err := pipe.TrainSupervised(ctx, ds.HandLabelPool, pipe.EmbeddingOnlySchema(), mcfg)
	if err != nil {
		return err
	}
	baseAUPRC, err := pipe.EvaluateAUPRC(ctx, basePred, ds.TestImage)
	if err != nil {
		return err
	}
	textSpec := pipe.DefaultTrainSpec()
	textSpec.UseText, textSpec.UseImage = true, false
	textPred, err := pipe.Train(res.Curation, textSpec)
	if err != nil {
		return err
	}
	textAUPRC, err := pipe.EvaluateAUPRC(ctx, textPred, ds.TestImage)
	if err != nil {
		return err
	}
	imageSpec := pipe.DefaultTrainSpec()
	imageSpec.UseText, imageSpec.UseImage = false, true
	imagePred, err := pipe.Train(res.Curation, imageSpec)
	if err != nil {
		return err
	}
	imageAUPRC, err := pipe.EvaluateAUPRC(ctx, imagePred, ds.TestImage)
	if err != nil {
		return err
	}

	fmt.Printf("\ntest AUPRC (base rate %.3f):\n", metrics.BaseRate(synth.Labels(ds.TestImage)))
	rows := []struct {
		name  string
		auprc float64
	}{
		{"embedding baseline (fully supervised)", baseAUPRC},
		{"text only (fully supervised, transferred)", textAUPRC},
		{"image only (weakly supervised)", imageAUPRC},
		{fmt.Sprintf("cross-modal (%s fusion)", opts.Fusion), crossAUPRC},
	}
	for _, r := range rows {
		fmt.Printf("  %-44s %.3f (%.2f× baseline)\n", r.name, r.auprc, metrics.Relative(r.auprc, baseAUPRC))
	}
	if crossAUPRC < baseAUPRC {
		fmt.Fprintln(os.Stderr, "warning: cross-modal model below embedding baseline at this scale")
	}
	return nil
}
