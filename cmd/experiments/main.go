// Command experiments regenerates the paper's evaluation tables and figures
// (Tables 1–3, Figures 5–7, the §6.6 fusion comparison and the §6.7.1
// automatic-vs-expert LF comparison) on the synthetic substrate and writes
// them as markdown.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|figure5|figure6|figure7|fusion|lfgen|ablations|rawvsfeat]
//	            [-scale 1.0] [-seed 17] [-tasks CT1,CT2,...] [-o out.md]
//	            [-store dir] [-trace trace.json] [-trace-summary]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -scale shrinks every corpus for fast smoke runs; the headline numbers use
// scale 1.0 (see EXPERIMENTS.md). -store routes curation through the
// disk-backed feature store rooted at the given directory: a second run at
// the same scale and seed reuses the featurized chunks instead of
// recomputing them, with bit-identical results. -trace writes a Chrome
// trace_event JSON file loadable in chrome://tracing or ui.perfetto.dev;
// -trace-summary prints the aggregated stage tree to stderr on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"crossmodal/internal/experiments"
	"crossmodal/internal/profiling"
	"crossmodal/internal/trace"
)

// runConfig carries the parsed flags; validate rejects bad combinations
// before any corpus is built.
type runConfig struct {
	run          string
	scale        float64
	seed         int64
	tasks        string
	out          string
	store        string
	workers      int
	cpuProfile   string
	memProfile   string
	tracePath    string
	traceSummary bool
}

func (c runConfig) validate() error {
	if c.scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %v", c.scale)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", c.workers)
	}
	known := map[string]bool{"all": true}
	for _, name := range experiments.ExperimentNames() {
		known[name] = true
	}
	for _, name := range strings.Split(c.run, ",") {
		if !known[strings.TrimSpace(name)] {
			return fmt.Errorf("unknown experiment %q (known: all, %s)",
				strings.TrimSpace(name), strings.Join(experiments.ExperimentNames(), ", "))
		}
	}
	if c.tasks != "" {
		allTasks := map[string]bool{}
		for _, t := range experiments.AllTasks() {
			allTasks[t] = true
		}
		for _, t := range strings.Split(c.tasks, ",") {
			if !allTasks[strings.TrimSpace(t)] {
				return fmt.Errorf("unknown task %q (known: %s)",
					strings.TrimSpace(t), strings.Join(experiments.AllTasks(), ", "))
			}
		}
	}
	return nil
}

// taskList resolves the -tasks flag to the task subset to run.
func (c runConfig) taskList() []string {
	if c.tasks == "" {
		return experiments.AllTasks()
	}
	parts := strings.Split(c.tasks, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var cfg runConfig
	flag.StringVar(&cfg.run, "run", "all", "experiments to run, comma-separated (all, table1, table2, table3, figure5, figure6, figure7, fusion, lfgen, ablations, rawvsfeat)")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "corpus scale factor")
	flag.Int64Var(&cfg.seed, "seed", 17, "random seed")
	flag.StringVar(&cfg.tasks, "tasks", "", "comma-separated task subset (default: all five)")
	flag.StringVar(&cfg.out, "o", "", "output file (default stdout)")
	flag.StringVar(&cfg.store, "store", "", "feature-store directory: curation runs through the disk-backed streaming path rooted here, reusing chunks featurized by earlier runs at the same scale and seed")
	flag.IntVar(&cfg.workers, "workers", 0, "worker goroutines per parallel stage (0 = GOMAXPROCS)")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&cfg.tracePath, "trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing or ui.perfetto.dev)")
	flag.BoolVar(&cfg.traceSummary, "trace-summary", false, "print the aggregated stage tree to stderr on exit")
	flag.Parse()

	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg runConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	stopProf, err := profiling.Start(cfg.cpuProfile, cfg.memProfile)
	if err != nil {
		return err
	}
	var summaryW io.Writer
	if cfg.traceSummary {
		summaryW = os.Stderr
	}
	stopTrace := trace.Capture(cfg.tracePath, summaryW)

	w := io.Writer(os.Stdout)
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	suite, err := experiments.NewSuite(experiments.Config{Scale: cfg.scale, Seed: cfg.seed, Workers: cfg.workers, StoreDir: cfg.store})
	if err != nil {
		return err
	}
	if err := dispatch(context.Background(), w, suite, cfg.run, cfg.taskList(), cfg.scale); err != nil {
		return err
	}
	if cfg.store != "" {
		log.Printf("feature store %s: reused %d previously featurized chunks", cfg.store, suite.ReusedChunks())
	}
	if err := stopTrace(); err != nil {
		return err
	}
	return stopProf()
}

// dispatch runs the selected subset of the experiment manifest in order.
func dispatch(ctx context.Context, w io.Writer, suite *experiments.Suite, run string, tasks []string, scale float64) error {
	want := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	fmt.Fprintf(w, "# Cross-modal adaptation experiments (scale %.2f, tasks %s)\n",
		scale, strings.Join(tasks, ", "))

	for _, exp := range experiments.Manifest() {
		if !all && !want[exp.Name] {
			continue
		}
		start := time.Now()
		fmt.Fprintf(w, "\n## %s\n\n", exp.Title)
		if err := exp.Run(ctx, w, suite, tasks); err != nil {
			return fmt.Errorf("%s: %w", exp.Name, err)
		}
		fmt.Fprintf(w, "\n_(generated in %s)_\n", time.Since(start).Round(time.Second))
	}
	return nil
}
