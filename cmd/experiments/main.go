// Command experiments regenerates the paper's evaluation tables and figures
// (Tables 1–3, Figures 5–7, the §6.6 fusion comparison and the §6.7.1
// automatic-vs-expert LF comparison) on the synthetic substrate and writes
// them as markdown.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|figure5|figure6|figure7|fusion|lfgen|rawvsfeat]
//	            [-scale 1.0] [-seed 17] [-tasks CT1,CT2,...] [-o out.md]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -scale shrinks every corpus for fast smoke runs; the headline numbers use
// scale 1.0 (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"crossmodal/internal/experiments"
	"crossmodal/internal/profiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "all", "experiment to run (all, table1, table2, table3, figure5, figure6, figure7, fusion, lfgen, ablations, rawvsfeat)")
		scale   = flag.Float64("scale", 1.0, "corpus scale factor")
		seed    = flag.Int64("seed", 17, "random seed")
		tasks   = flag.String("tasks", "", "comma-separated task subset (default: all five)")
		out     = flag.String("o", "", "output file (default stdout)")
		workers = flag.Int("workers", 0, "worker goroutines per parallel stage (0 = GOMAXPROCS)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	taskList := experiments.AllTasks()
	if *tasks != "" {
		taskList = strings.Split(*tasks, ",")
	}
	suite, err := experiments.NewSuite(experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := dispatch(ctx, w, suite, *run, taskList, *scale); err != nil {
		log.Fatal(err)
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
}

func dispatch(ctx context.Context, w io.Writer, suite *experiments.Suite, run string, tasks []string, scale float64) error {
	want := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	step := func(name, title string, fn func() error) error {
		if !all && !want[name] {
			return nil
		}
		ran++
		start := time.Now()
		fmt.Fprintf(w, "\n## %s\n\n", title)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "\n_(generated in %s)_\n", time.Since(start).Round(time.Second))
		return nil
	}

	fmt.Fprintf(w, "# Cross-modal adaptation experiments (scale %.2f, tasks %s)\n",
		scale, strings.Join(tasks, ", "))

	if err := step("table1", "Table 1 — task statistics", func() error {
		rows, err := suite.Table1(ctx, tasks)
		if err != nil {
			return err
		}
		experiments.RenderTable1(w, rows)
		return nil
	}); err != nil {
		return err
	}
	if err := step("table2", "Table 2 — end-to-end relative AUPRC and cross-over points", func() error {
		rows, err := suite.Table2(ctx, tasks)
		if err != nil {
			return err
		}
		experiments.RenderTable2(w, rows)
		return nil
	}); err != nil {
		return err
	}
	if err := step("table3", "Table 3 — label-propagation lift", func() error {
		rows, err := suite.Table3(ctx, tasks)
		if err != nil {
			return err
		}
		experiments.RenderTable3(w, rows)
		return nil
	}); err != nil {
		return err
	}
	if err := step("figure5", "Figure 5 — hand-label budget cross-over (CT1)", func() error {
		series, err := suite.Figure5(ctx, "CT1")
		if err != nil {
			return err
		}
		experiments.RenderFigure5(w, series)
		return nil
	}); err != nil {
		return err
	}
	if err := step("figure6", "Figure 6 — organizational-resource factor analysis (CT1)", func() error {
		steps, err := suite.Figure6(ctx, "CT1")
		if err != nil {
			return err
		}
		experiments.RenderFigure6(w, steps)
		return nil
	}); err != nil {
		return err
	}
	if err := step("figure7", "Figure 7 — modality lesion study (CT1)", func() error {
		rows, err := suite.Figure7(ctx, "CT1")
		if err != nil {
			return err
		}
		experiments.RenderFigure7(w, rows)
		return nil
	}); err != nil {
		return err
	}
	if err := step("fusion", "§6.6 — fusion architecture comparison", func() error {
		rows, err := suite.FusionComparison(ctx, tasks)
		if err != nil {
			return err
		}
		experiments.RenderFusion(w, rows)
		return nil
	}); err != nil {
		return err
	}
	if err := step("lfgen", "§6.7.1 — automatic vs expert LF generation (CT1)", func() error {
		rows, err := suite.LFGeneration(ctx, "CT1")
		if err != nil {
			return err
		}
		experiments.RenderLFGen(w, rows)
		return nil
	}); err != nil {
		return err
	}
	if err := step("ablations", "Design-choice ablations (CT1)", func() error {
		rows, err := suite.Ablations(ctx, "CT1")
		if err != nil {
			return err
		}
		experiments.RenderAblations(w, rows)
		return nil
	}); err != nil {
		return err
	}
	if err := step("rawvsfeat", "§6.6 — feature space vs raw embedding (CT1)", func() error {
		res, err := suite.RawVsFeatures(ctx, "CT1")
		if err != nil {
			return err
		}
		experiments.RenderRawVsFeatures(w, res)
		return nil
	}); err != nil {
		return err
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", run)
	}
	return nil
}
