package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"crossmodal/internal/experiments"
)

// goodConfig mirrors the flag defaults.
func goodConfig() runConfig {
	return runConfig{run: "all", scale: 1.0, seed: 17}
}

func TestRunConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*runConfig)
		wantErr string // "" means valid
	}{
		{"defaults", func(*runConfig) {}, ""},
		{"single experiment", func(c *runConfig) { c.run = "table2" }, ""},
		{"experiment list", func(c *runConfig) { c.run = "table1,figure5, lfgen" }, ""},
		{"task subset", func(c *runConfig) { c.tasks = "CT1,CT3" }, ""},
		{"task subset with spaces", func(c *runConfig) { c.tasks = "CT1, CT2" }, ""},
		{"tiny scale", func(c *runConfig) { c.scale = 0.05 }, ""},
		{"trace flags", func(c *runConfig) { c.tracePath = "t.json"; c.traceSummary = true }, ""},

		{"unknown experiment", func(c *runConfig) { c.run = "table9" }, "table9"},
		{"one bad name in list", func(c *runConfig) { c.run = "table1,nope" }, "nope"},
		{"unknown task", func(c *runConfig) { c.tasks = "CT1,CT9" }, "CT9"},
		{"zero scale", func(c *runConfig) { c.scale = 0 }, "-scale"},
		{"negative scale", func(c *runConfig) { c.scale = -1 }, "-scale"},
		{"negative workers", func(c *runConfig) { c.workers = -2 }, "-workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the problem (%q)", err, tc.wantErr)
			}
		})
	}
}

// TestValidateKnowsEveryManifestEntry: every experiment declared in the
// manifest must pass -run validation, so adding one to the registry is
// enough to make it runnable.
func TestValidateKnowsEveryManifestEntry(t *testing.T) {
	for _, name := range experiments.ExperimentNames() {
		cfg := goodConfig()
		cfg.run = name
		if err := cfg.validate(); err != nil {
			t.Errorf("manifest experiment %q rejected by validate(): %v", name, err)
		}
	}
}

func TestTaskList(t *testing.T) {
	cfg := goodConfig()
	if got := cfg.taskList(); !reflect.DeepEqual(got, experiments.AllTasks()) {
		t.Errorf("default taskList = %v, want all tasks %v", got, experiments.AllTasks())
	}
	cfg.tasks = "CT2, CT4"
	if got := cfg.taskList(); !reflect.DeepEqual(got, []string{"CT2", "CT4"}) {
		t.Errorf("taskList = %v, want [CT2 CT4]", got)
	}
}

// TestRunTracedWritesChromeTrace runs one real experiment at tiny scale with
// -trace and asserts the output is loadable Chrome trace_event JSON whose
// stage tree covers the whole adaptation loop.
func TestRunTracedWritesChromeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	out := filepath.Join(t.TempDir(), "trace.json")
	md := filepath.Join(t.TempDir(), "results.md")
	cfg := runConfig{run: "rawvsfeat", scale: 0.05, seed: 5, tasks: "CT1", out: md, tracePath: out}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	for _, stage := range []string{"featurize", "mining", "labelprop", "labelmodel", "train", "eval"} {
		if !names[stage] {
			t.Errorf("trace missing stage %q", stage)
		}
	}
}

// TestRunRejectsInvalidConfigFast: run() must reject before building the
// suite or any corpus.
func TestRunRejectsInvalidConfigFast(t *testing.T) {
	cfg := goodConfig()
	cfg.run = "table9"
	start := time.Now()
	if err := run(cfg); err == nil {
		t.Fatal("run() accepted an unknown experiment")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("invalid config took %v to reject", elapsed)
	}
}
