// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark runs can be archived and diffed across commits
// (see `make bench-json`, which snapshots the curation-path benchmarks to
// BENCH_curation.json).
//
// Usage:
//
//	go test ./... -bench . -benchmem | benchjson [-o out.json]
//
// Lines that are not benchmark results (pkg headers, PASS/ok trailers) pass
// through to the metadata section or are dropped. Input containing no
// benchmark results at all is an error — it means the bench run produced
// nothing (wrong -bench pattern, build failure upstream of the pipe), and
// silently archiving an empty document would hide that.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in normalized form.
type Result struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	Iter int64  `json:"iterations"`
	// NsPerOp is time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom benchmark metrics (testing.B.ReportMetric),
	// keyed by unit — e.g. "entities", "peak-heap-MB" from the scale
	// benchmarks (see `make bench-scale`).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if doc.CPU == "" {
		// Output from tools that are not `go test` (loadgen) carries no cpu:
		// header; stamp the host CPU so archived serving numbers stay
		// comparable across machines.
		doc.CPU = hostCPU("/proc/cpuinfo")
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// hostCPU reads the first "model name" line from a /proc/cpuinfo-style
// file, returning "" when the file or field is unavailable (non-Linux).
func hostCPU(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, value, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(value)
		}
	}
	return ""
}

// parse reads `go test -bench` text output and collects every benchmark
// result line. It fails when the input holds no benchmark results.
func parse(r io.Reader) (Doc, error) {
	doc := Doc{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line, pkg); ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Doc{}, err
	}
	if len(doc.Results) == 0 {
		return Doc{}, fmt.Errorf("no benchmark results in input (expected `go test -bench` output)")
	}
	return doc, nil
}

// parseLine parses one "BenchmarkName-8  123  456 ns/op  7 B/op  8 allocs/op"
// line. The -N GOMAXPROCS suffix is stripped from the name.
func parseLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iter, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: name, Pkg: pkg, Iter: iter, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		f, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			v := int64(f)
			r.BytesPerOp = &v
		case "allocs/op":
			v := int64(f)
			r.AllocsPerOp = &v
		default:
			// Custom metric from testing.B.ReportMetric; keep its unit as
			// the key so scale metrics like "entities" or "peak-heap-MB"
			// survive into the archived document.
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = f
		}
	}
	return r, true
}
