package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden parse fixture")

// TestParseGolden parses a captured `go test -bench` transcript and compares
// the normalized document against the checked-in golden JSON.
func TestParseGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "bench.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("parse output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestParseFields(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("CPU = %q", doc.CPU)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(doc.Results))
	}
	first := doc.Results[0]
	if first.Name != "BenchmarkPipelineCurate" || first.Pkg != "crossmodal" {
		t.Errorf("first = %+v", first)
	}
	if first.Iter != 5 || first.NsPerOp != 223456789 {
		t.Errorf("first numbers = %+v", first)
	}
	if first.BytesPerOp == nil || *first.BytesPerOp != 12345678 {
		t.Errorf("first BytesPerOp = %v", first.BytesPerOp)
	}
	if first.AllocsPerOp == nil || *first.AllocsPerOp != 98765 {
		t.Errorf("first AllocsPerOp = %v", first.AllocsPerOp)
	}
	// Second result has no -benchmem columns.
	if doc.Results[1].BytesPerOp != nil || doc.Results[1].AllocsPerOp != nil {
		t.Errorf("second result should have no memory columns: %+v", doc.Results[1])
	}
	// Third result comes from the second package header.
	if doc.Results[2].Pkg != "crossmodal/internal/model" {
		t.Errorf("third pkg = %q", doc.Results[2].Pkg)
	}
}

// TestParseRejectsEmptyInput is the regression test for silently archiving
// an empty benchmark document.
func TestParseRejectsEmptyInput(t *testing.T) {
	for _, input := range []string{
		"",
		"PASS\nok  \tcrossmodal\t1.0s\n",
		"garbage\nBenchmark but not a result line\n",
	} {
		if _, err := parse(strings.NewReader(input)); err == nil {
			t.Errorf("parse(%q) succeeded, want zero-results error", input)
		}
	}
}

// TestHostCPU covers the /proc/cpuinfo fallback that stamps serving
// benchmarks (loadgen output has no cpu: header).
func TestHostCPU(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cpuinfo")
	content := "processor\t: 0\nvendor_id\t: GenuineIntel\nmodel name\t: Intel(R) Xeon(R) CPU @ 2.10GHz\nmodel name\t: second entry ignored\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := hostCPU(path); got != "Intel(R) Xeon(R) CPU @ 2.10GHz" {
		t.Errorf("hostCPU = %q", got)
	}
	if got := hostCPU(filepath.Join(dir, "missing")); got != "" {
		t.Errorf("missing file gave %q, want empty", got)
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, []byte("flags\t: fpu vme\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := hostCPU(empty); got != "" {
		t.Errorf("no model name gave %q, want empty", got)
	}
}

func TestParseLine(t *testing.T) {
	tests := []struct {
		line string
		ok   bool
		name string
	}{
		{"BenchmarkX-8 10 5 ns/op", true, "BenchmarkX"},
		{"BenchmarkNoSuffix 10 5 ns/op", true, "BenchmarkNoSuffix"},
		{"BenchmarkX-8 10 5", false, ""},
		{"BenchmarkX-8 ten 5 ns/op", false, ""},
		{"BenchmarkName-with-dash-4 7 3.5 ns/op", true, "BenchmarkName-with-dash"},
	}
	for _, tt := range tests {
		r, ok := parseLine(tt.line, "pkg")
		if ok != tt.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", tt.line, ok, tt.ok)
			continue
		}
		if ok && r.Name != tt.name {
			t.Errorf("parseLine(%q) name = %q, want %q", tt.line, r.Name, tt.name)
		}
	}
}

// TestParseLineCustomMetrics: metrics reported via testing.B.ReportMetric
// (the scale benchmarks report entities and peak-heap-MB) land in the
// Metrics map keyed by unit, alongside the standard -benchmem fields.
func TestParseLineCustomMetrics(t *testing.T) {
	line := "BenchmarkScaleStream/entities=100000-2 1 123456789 ns/op 100000 entities 42.5 peak-heap-MB 96.0 peak-rss-MB 7 B/op 3 allocs/op"
	r, ok := parseLine(line, "crossmodal")
	if !ok {
		t.Fatalf("parseLine rejected %q", line)
	}
	want := map[string]float64{"entities": 100000, "peak-heap-MB": 42.5, "peak-rss-MB": 96.0}
	for unit, v := range want {
		if got := r.Metrics[unit]; got != v {
			t.Errorf("metric %s = %v, want %v", unit, got, v)
		}
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 7 || r.AllocsPerOp == nil || *r.AllocsPerOp != 3 {
		t.Errorf("benchmem fields lost next to custom metrics: %+v", r)
	}
	if len(r.Metrics) != len(want) {
		t.Errorf("unexpected extra metrics: %v", r.Metrics)
	}
}
